"""Generic CSV loading for categorical data.

These helpers turn arbitrary delimited files of categorical columns into
:class:`~repro.domain.dataset.Dataset` objects by enumerating the distinct
values of every column.  They make it easy to run the release pipeline on a
user's own data without writing encoding code.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.domain.attribute import Attribute
from repro.domain.dataset import Dataset
from repro.domain.schema import Schema
from repro.exceptions import DataError


def infer_schema_from_records(
    columns: Sequence[str], rows: Sequence[Sequence[str]]
) -> Tuple[Schema, np.ndarray]:
    """Build a schema (and encoded record matrix) from raw string records.

    Every column becomes a categorical attribute whose values are the sorted
    distinct strings observed in that column.  Encoding is one
    ``numpy.unique(..., return_inverse=True)`` per column (NumPy sorts
    strings exactly like Python, so labels and codes are identical to the
    historical per-row dict encoding, just without the per-cell Python).
    """
    if len(rows) == 0:
        raise DataError("cannot infer a schema from an empty record collection")
    table = rows if isinstance(rows, np.ndarray) else None
    if table is not None:
        ragged = table.ndim != 2 or table.shape[1] != len(columns)
    else:
        ragged = any(len(row) != len(columns) for row in rows)
    if ragged:
        raise DataError("all rows must have one value per column")
    attributes: List[Attribute] = []
    matrix = np.empty((len(rows), len(columns)), dtype=np.int64)
    for position, name in enumerate(columns):
        # One array *per column*, dtype=object: fixed-width string dtypes
        # would pad every cell (and silently drop trailing NUL characters),
        # while object columns keep the original strings by reference and
        # np.unique sorts them with Python's own string comparison — exactly
        # the historical ``sorted(set(column))`` order.
        if table is not None:
            column = table[:, position]
        else:
            column = np.asarray([row[position] for row in rows], dtype=object)
        values, codes = np.unique(column, return_inverse=True)
        if values.shape[0] < 2:
            raise DataError(
                f"column {name!r} has fewer than two distinct values and cannot "
                "be used as a categorical attribute"
            )
        attributes.append(
            Attribute(name, values.shape[0], labels=tuple(values.tolist()))
        )
        matrix[:, position] = codes.reshape(-1)
    return Schema(attributes), matrix


def load_csv(
    path: Union[str, Path],
    *,
    columns: Optional[Sequence[str]] = None,
    delimiter: str = ",",
    has_header: bool = True,
    name: Optional[str] = None,
) -> Dataset:
    """Load a delimited file of categorical columns into a :class:`Dataset`.

    Parameters
    ----------
    path:
        Path to the file.
    columns:
        Names of the columns to keep (all columns when ``None``).  When the
        file has no header, these must be ``"column_0"``, ``"column_1"``, ...
    delimiter:
        Field delimiter.
    has_header:
        Whether the first row holds column names.
    name:
        Optional dataset name (defaults to the file stem).
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"file not found: {file_path}")
    with file_path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = [row for row in reader if any(cell.strip() for cell in row)]
    if not rows:
        raise DataError(f"{file_path} contains no records")
    if has_header:
        header = [cell.strip() for cell in rows[0]]
        body = rows[1:]
    else:
        header = [f"column_{i}" for i in range(len(rows[0]))]
        body = rows
    if not body:
        raise DataError(f"{file_path} contains a header but no records")
    wanted = list(columns) if columns is not None else header
    missing = [column for column in wanted if column not in header]
    if missing:
        raise DataError(f"columns {missing} not present in {file_path} (header: {header})")
    positions = [header.index(column) for column in wanted]
    stripped = [[row[position].strip() for position in positions] for row in body]
    schema, matrix = infer_schema_from_records(wanted, stripped)
    return Dataset(schema, matrix, name=name or file_path.stem)


def infer_csv_schema(
    path: Union[str, Path],
    *,
    columns: Optional[Sequence[str]] = None,
    delimiter: str = ",",
    has_header: bool = True,
) -> Schema:
    """Infer a schema from a delimited file in one streaming pass.

    Memory is bounded by the number of *distinct* values per column (never
    the row count), so arbitrarily large files can be schema'd before being
    streamed through :func:`iter_csv_batches`.  The result is identical to
    ``load_csv(path, ...).schema``: every kept column becomes a categorical
    attribute over its sorted distinct (stripped) strings.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"file not found: {file_path}")
    with file_path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        positions: Optional[List[int]] = None
        wanted: Optional[List[str]] = None
        seen: List[set] = []
        rows = 0
        for row in reader:
            if not any(cell.strip() for cell in row):
                continue
            if positions is None:
                if has_header:
                    header = [cell.strip() for cell in row]
                else:
                    header = [f"column_{i}" for i in range(len(row))]
                wanted = list(columns) if columns is not None else header
                missing = [column for column in wanted if column not in header]
                if missing:
                    raise DataError(
                        f"columns {missing} not present in {file_path} (header: {header})"
                    )
                positions = [header.index(column) for column in wanted]
                seen = [set() for _ in wanted]
                if has_header:
                    continue
            if max(positions, default=-1) >= len(row):
                raise DataError("all rows must have one value per column")
            for values, position in zip(seen, positions):
                values.add(row[position].strip())
            rows += 1
    if positions is None or rows == 0:
        raise DataError(f"{file_path} contains no records")
    attributes: List[Attribute] = []
    assert wanted is not None
    for name, values in zip(wanted, seen):
        if len(values) < 2:
            raise DataError(
                f"column {name!r} has fewer than two distinct values and cannot "
                "be used as a categorical attribute"
            )
        attributes.append(Attribute(name, len(values), labels=tuple(sorted(values))))
    return Schema(attributes)


def _attribute_code_map(attribute: Attribute) -> Dict[str, int]:
    """Label → code mapping of one attribute (labels, or plain digit codes)."""
    if attribute.labels is not None:
        return {label: code for code, label in enumerate(attribute.labels)}
    return {str(code): code for code in range(attribute.cardinality)}


def _batch_code_dtype(schema: Schema) -> np.dtype:
    """Narrowest unsigned dtype holding every per-attribute code of ``schema``.

    Batch matrices hold *per-attribute* codes (bounded by the largest
    attribute cardinality, not the packed domain), so uint8 covers most real
    schemas — an 8x memory cut per buffered batch against plain int64.
    ``Schema.encode_records`` widens to int64 internally, so narrowed
    batches pack to identical domain codes.
    """
    top = max(attribute.cardinality - 1 for attribute in schema.attributes)
    for dtype in (np.uint8, np.uint16, np.uint32):
        if top <= np.iinfo(dtype).max:
            return np.dtype(dtype)
    return np.dtype(np.int64)


def _encode_chunk(
    columns: List[List[str]],
    maps: Sequence[Dict[str, int]],
    names: Sequence[str],
    dtype: np.dtype = np.dtype(np.int64),
) -> np.ndarray:
    """Encode one buffered chunk of string columns into a code matrix.

    One ``np.unique`` per column maps each *distinct* string through the
    label dictionary once (instead of one dict lookup per cell).
    """
    matrix = np.empty((len(columns[0]), len(columns)), dtype=dtype)
    for position, (column, mapping, name) in enumerate(zip(columns, maps, names)):
        values, inverse = np.unique(np.asarray(column, dtype=object), return_inverse=True)
        try:
            codes = np.array([mapping[value] for value in values.tolist()], dtype=dtype)
        except KeyError as error:
            raise DataError(
                f"column {name!r} contains the value {error.args[0]!r}, which is "
                "not in the schema's label set"
            ) from None
        matrix[:, position] = codes[inverse.reshape(-1)]
    return matrix


def iter_csv_batches(
    path: Union[str, Path],
    schema: Schema,
    *,
    columns: Optional[Sequence[str]] = None,
    delimiter: str = ",",
    has_header: bool = True,
    batch_size: int = 50_000,
) -> Iterator[np.ndarray]:
    """Stream a delimited file as encoded record batches over a fixed schema.

    The streaming counterpart of :func:`load_csv` for datasets larger than
    memory: the file is read row by row and yielded as ``(rows, attributes)``
    code matrices of at most ``batch_size`` rows — the whole file is never
    resident.  Matrices use the narrowest unsigned dtype that holds the
    schema's per-attribute codes (uint8/16/32, int64 as the fallback); the
    code *values* are identical to the historical int64 batches and pack to
    the same domain codes.  Because values are *encoded* (not inferred), the schema
    is fixed up front and every value must be one of its attribute labels
    (schemas without labels accept the integer codes as digits); an unknown
    value raises :class:`DataError` naming the column.

    ``columns`` names the schema attributes to look up in the file's header
    (a permutation of the schema's attribute names; useful when the file
    holds extra columns or a different header order).  The yielded matrices
    are **always in schema attribute order** — ready for
    :meth:`repro.domain.schema.Schema.encode_records` /
    :meth:`repro.shards.streaming.StreamingSourceBuilder.add_records` —
    regardless of the ``columns`` order.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"file not found: {file_path}")
    if batch_size < 1:
        raise DataError(f"batch_size must be positive, got {batch_size}")
    names = [attribute.name for attribute in schema.attributes]
    wanted = list(columns) if columns is not None else list(names)
    if sorted(wanted) != sorted(names):
        raise DataError(
            f"columns must name every schema attribute exactly once "
            f"(schema: {names}, got: {wanted})"
        )
    # Read in `wanted` (file) order, yield in schema attribute order: codes
    # are packed positionally downstream, so column order must match the
    # schema no matter how the file is laid out.
    schema_order = [wanted.index(name) for name in names]
    maps = [_attribute_code_map(schema.attribute(name)) for name in wanted]
    dtype = _batch_code_dtype(schema)
    with file_path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        positions: Optional[List[int]] = None
        if not has_header:
            positions = list(range(len(wanted)))
        buffer: List[List[str]] = [[] for _ in wanted]
        buffered = 0
        for row in reader:
            if not any(cell.strip() for cell in row):
                continue
            if positions is None:  # first non-empty row is the header
                header = [cell.strip() for cell in row]
                missing = [column for column in wanted if column not in header]
                if missing:
                    raise DataError(
                        f"columns {missing} not present in {file_path} (header: {header})"
                    )
                positions = [header.index(column) for column in wanted]
                continue
            if max(positions, default=-1) >= len(row):
                raise DataError("all rows must have one value per column")
            for column, position in zip(buffer, positions):
                column.append(row[position].strip())
            buffered += 1
            if buffered >= batch_size:
                yield _encode_chunk(buffer, maps, wanted, dtype)[:, schema_order]
                buffer = [[] for _ in wanted]
                buffered = 0
        if buffered:
            yield _encode_chunk(buffer, maps, wanted, dtype)[:, schema_order]
