"""Generic CSV loading for categorical data.

These helpers turn arbitrary delimited files of categorical columns into
:class:`~repro.domain.dataset.Dataset` objects by enumerating the distinct
values of every column.  They make it easy to run the release pipeline on a
user's own data without writing encoding code.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.domain.attribute import Attribute
from repro.domain.dataset import Dataset
from repro.domain.schema import Schema
from repro.exceptions import DataError


def infer_schema_from_records(
    columns: Sequence[str], rows: Sequence[Sequence[str]]
) -> Tuple[Schema, np.ndarray]:
    """Build a schema (and encoded record matrix) from raw string records.

    Every column becomes a categorical attribute whose values are the sorted
    distinct strings observed in that column.
    """
    if not rows:
        raise DataError("cannot infer a schema from an empty record collection")
    if any(len(row) != len(columns) for row in rows):
        raise DataError("all rows must have one value per column")
    attributes: List[Attribute] = []
    encodings: List[Dict[str, int]] = []
    for position, name in enumerate(columns):
        values = sorted({row[position] for row in rows})
        if len(values) < 2:
            raise DataError(
                f"column {name!r} has fewer than two distinct values and cannot "
                "be used as a categorical attribute"
            )
        attributes.append(Attribute(name, len(values), labels=tuple(values)))
        encodings.append({value: code for code, value in enumerate(values)})
    matrix = np.array(
        [[encodings[j][row[j]] for j in range(len(columns))] for row in rows],
        dtype=np.int64,
    )
    return Schema(attributes), matrix


def load_csv(
    path: Union[str, Path],
    *,
    columns: Optional[Sequence[str]] = None,
    delimiter: str = ",",
    has_header: bool = True,
    name: Optional[str] = None,
) -> Dataset:
    """Load a delimited file of categorical columns into a :class:`Dataset`.

    Parameters
    ----------
    path:
        Path to the file.
    columns:
        Names of the columns to keep (all columns when ``None``).  When the
        file has no header, these must be ``"column_0"``, ``"column_1"``, ...
    delimiter:
        Field delimiter.
    has_header:
        Whether the first row holds column names.
    name:
        Optional dataset name (defaults to the file stem).
    """
    file_path = Path(path)
    if not file_path.exists():
        raise DataError(f"file not found: {file_path}")
    with file_path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = [row for row in reader if any(cell.strip() for cell in row)]
    if not rows:
        raise DataError(f"{file_path} contains no records")
    if has_header:
        header = [cell.strip() for cell in rows[0]]
        body = rows[1:]
    else:
        header = [f"column_{i}" for i in range(len(rows[0]))]
        body = rows
    if not body:
        raise DataError(f"{file_path} contains a header but no records")
    wanted = list(columns) if columns is not None else header
    missing = [column for column in wanted if column not in header]
    if missing:
        raise DataError(f"columns {missing} not present in {file_path} (header: {header})")
    positions = [header.index(column) for column in wanted]
    stripped = [[row[position].strip() for position in positions] for row in body]
    schema, matrix = infer_schema_from_records(wanted, stripped)
    return Dataset(schema, matrix, name=name or file_path.stem)
