"""The on-disk encoded-source format: writers, manifest, open_source."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.domain import Schema
from repro.exceptions import DataError
from repro.shards.partition import shard_of_codes
from repro.shards.sharded import ShardedRecordSource
from repro.sources import RecordSource
from repro.store import (
    EncodedSourceWriter,
    MappedRecordSource,
    open_source,
    read_manifest,
    resolve_store_shards,
    write_source,
)
from repro.store.encoded import MANIFEST_FILE


@pytest.fixture()
def arrays():
    rng = np.random.default_rng(42)
    codes = rng.integers(0, 1 << 20, 5000, dtype=np.int64)
    weights = rng.integers(1, 4, 5000).astype(np.float64)
    return codes, weights


class TestResolveStoreShards:
    def test_explicit_wins(self):
        assert resolve_store_shards(10, 7) == 7

    def test_auto_scales_with_entries(self):
        assert resolve_store_shards(100) == 1
        assert resolve_store_shards((1 << 20) * 3) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(DataError):
            resolve_store_shards(10, 0)


class TestWriteAndOpen:
    def test_round_trip_is_bitwise(self, tmp_path, arrays):
        codes, weights = arrays
        path = write_source(tmp_path / "src", codes, weights, dimension=20, shards=4)
        source = open_source(path, verify=True)
        assert isinstance(source, MappedRecordSource)
        reference = RecordSource(codes, weights, dimension=20)
        assert source.distinct_records == reference.distinct_records
        assert source.total == reference.total
        for mask in (0b1, 0b1010, (1 << 12) - 1, (1 << 20) - 1):
            assert np.array_equal(source.marginal(mask), reference.marginal(mask))

    def test_layout_is_the_stable_hash_partition(self, tmp_path, arrays):
        codes, weights = arrays
        path = write_source(tmp_path / "src", codes, weights, dimension=20, shards=3)
        base = RecordSource(codes, weights, dimension=20)
        sharded = ShardedRecordSource.from_record_source(base, shards=3, workers=1)
        ids = shard_of_codes(base.codes, 3)
        mapped = open_source(path)
        for shard in range(3):
            disk_codes, disk_weights = mapped._shards[shard]
            assert np.array_equal(np.asarray(disk_codes), base.codes[ids == shard])
            assert np.array_equal(np.asarray(disk_weights), base.weights[ids == shard])
        for mask in (0b11, 0b100100):
            assert np.array_equal(mapped.marginal(mask), sharded.marginal(mask))

    def test_schema_round_trips(self, tmp_path):
        schema = Schema.binary(["x", "y", "z"])
        codes = np.array([0, 1, 5, 7], dtype=np.int64)
        path = write_source(tmp_path / "src", codes, dimension=3, schema=schema)
        assert open_source(path).schema == schema

    def test_overwrite_required_to_replace(self, tmp_path, arrays):
        codes, weights = arrays
        path = write_source(tmp_path / "src", codes, weights, dimension=20)
        with pytest.raises(DataError, match="overwrite"):
            write_source(path, codes, weights, dimension=20)
        write_source(path, codes[:100], weights[:100], dimension=20, overwrite=True)
        assert open_source(path).distinct_records == np.unique(codes[:100]).shape[0]

    def test_manifest_reports_totals_without_touching_data(self, tmp_path, arrays):
        codes, weights = arrays
        path = write_source(tmp_path / "src", codes, weights, dimension=20, shards=2)
        manifest = read_manifest(path)
        reference = RecordSource(codes, weights, dimension=20)
        assert manifest["distinct"] == reference.distinct_records
        assert manifest["total_weight"] == reference.total
        assert manifest["dimension"] == 20
        assert len(manifest["shard_files"]) == 2


class TestWriterValidation:
    def test_rejects_unsorted_chunks(self, tmp_path):
        with EncodedSourceWriter(tmp_path / "s", dimension=8, shards=1) as writer:
            writer.append(np.array([1, 5], dtype=np.int64), np.ones(2))
            with pytest.raises(DataError, match="strictly increasing"):
                writer.append(np.array([4], dtype=np.int64), np.ones(1))
            writer.append(np.array([9], dtype=np.int64), np.ones(1))

    def test_rejects_duplicates_within_chunk(self, tmp_path):
        writer = EncodedSourceWriter(tmp_path / "s", dimension=8, shards=1)
        try:
            with pytest.raises(DataError, match="strictly increasing"):
                writer.append(np.array([2, 2], dtype=np.int64), np.ones(2))
        finally:
            writer.abort()

    def test_rejects_out_of_domain_codes(self, tmp_path):
        writer = EncodedSourceWriter(tmp_path / "s", dimension=4, shards=1)
        try:
            with pytest.raises(DataError, match="domain"):
                writer.append(np.array([99], dtype=np.int64), np.ones(1))
        finally:
            writer.abort()

    def test_abort_leaves_nothing_behind(self, tmp_path):
        writer = EncodedSourceWriter(tmp_path / "s", dimension=8, shards=2)
        writer.append(np.array([3], dtype=np.int64), np.ones(1))
        writer.abort()
        assert not (tmp_path / "s").exists()
        assert list(tmp_path.iterdir()) == []


class TestManifestValidation:
    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(DataError, match="not an encoded source"):
            read_manifest(tmp_path / "empty")

    def test_wrong_format_tag(self, tmp_path, arrays):
        codes, weights = arrays
        path = write_source(tmp_path / "src", codes, weights, dimension=20)
        manifest = json.loads((path / MANIFEST_FILE).read_text())
        manifest["format"] = "something/else"
        (path / MANIFEST_FILE).write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="format"):
            open_source(path)

    def test_future_version_rejected(self, tmp_path, arrays):
        codes, weights = arrays
        path = write_source(tmp_path / "src", codes, weights, dimension=20)
        manifest = json.loads((path / MANIFEST_FILE).read_text())
        manifest["format_version"] = 99
        (path / MANIFEST_FILE).write_text(json.dumps(manifest))
        with pytest.raises(DataError, match="version"):
            open_source(path)

    def test_missing_shard_file(self, tmp_path, arrays):
        codes, weights = arrays
        path = write_source(tmp_path / "src", codes, weights, dimension=20, shards=2)
        (path / "shard-0001.codes.npy").unlink()
        with pytest.raises(DataError, match="missing"):
            open_source(path)

    def test_digest_mismatch_detected_with_verify(self, tmp_path, arrays):
        codes, weights = arrays
        path = write_source(tmp_path / "src", codes, weights, dimension=20, shards=1)
        target = path / "shard-0000.weights.npy"
        data = bytearray(target.read_bytes())
        data[-1] ^= 0xFF  # flip bits in the last weight
        target.write_bytes(bytes(data))
        open_source(path)  # lazy open does not hash
        with pytest.raises(DataError, match="digest"):
            open_source(path, verify=True)
