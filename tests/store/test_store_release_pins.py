"""sha256-pinned wide-schema releases measured through the storage tier.

The out-of-core acceptance scenario: the d = 32 release pinned in
``tests/shards/test_shard_release_pins.py`` must be reproduced **bit for
bit** when the records are (a) written to an encoded on-disk source and
measured off ``np.memmap`` shards, (b) streamed through a budgeted
``StreamingSourceBuilder`` that spills sorted runs to disk, and (c) round
tripped through ``write_store`` and released straight from the path.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.domain import Dataset, Schema
from repro.queries import MarginalQuery, MarginalWorkload
from repro.shards import StreamingSourceBuilder
from repro.store import open_source, write_source

D = 32

#: Captured from the unsharded in-memory record-native backend (PR 4); every
#: storage-tier configuration must reproduce it exactly.
EXPECTED_SHA256 = "fa7bc711f5d6a31c53a1c69a7207e07c035066db7fa84f2ee1fbf9d9ed63d805"


def fingerprint(marginals) -> str:
    digest = hashlib.sha256()
    for marginal in marginals:
        digest.update(
            np.ascontiguousarray(np.asarray(marginal, dtype=np.float64)).tobytes()
        )
    return digest.hexdigest()


@pytest.fixture(scope="module")
def wide_inputs():
    schema = Schema.binary([f"a{i:02d}" for i in range(D)])
    rng = np.random.default_rng(2013)
    records = (rng.random((3000, D)) < 0.35).astype(np.int64)
    dataset = Dataset(schema, records, name="wide-32")
    masks = [1 << i for i in range(D)]
    masks += [(1 << i) | (1 << j) for i in range(8) for j in range(i + 1, 8)]
    masks += [0b111, (1 << 31) | (1 << 15) | 1]
    workload = MarginalWorkload(
        schema, [MarginalQuery(mask, D) for mask in masks], name="wide-mixed"
    )
    return dataset, workload


def _release(data, workload, **kwargs):
    return release_marginals(data, workload, budget=1.0, strategy="F", rng=5, **kwargs)


class TestStoredSourcePins:
    @pytest.mark.parametrize("shards,workers", [(1, 1), (4, 2)])
    def test_mapped_source_reproduces_the_pin(
        self, tmp_path, wide_inputs, shards, workers
    ):
        dataset, workload = wide_inputs
        reference = dataset.as_source(backend="record")
        path = write_source(
            tmp_path / "src",
            reference.codes,
            reference.weights,
            dimension=D,
            schema=dataset.schema,
            shards=shards,
        )
        mapped = open_source(path, workers=workers)
        release = _release(mapped, workload)
        assert fingerprint(release.marginals) == EXPECTED_SHA256

    def test_path_input_reproduces_the_pin(self, tmp_path, wide_inputs):
        dataset, workload = wide_inputs
        reference = dataset.as_source(backend="record")
        path = write_source(
            tmp_path / "src",
            reference.codes,
            reference.weights,
            dimension=D,
            schema=dataset.schema,
            shards=3,
        )
        release = _release(str(path), workload)
        assert fingerprint(release.marginals) == EXPECTED_SHA256


class TestSpilledBuildPins:
    def test_spilled_build_reproduces_the_pin(self, wide_inputs):
        dataset, workload = wide_inputs
        builder = StreamingSourceBuilder(dataset.schema, memory_budget="64K")
        for start in range(0, len(dataset.records), 500):
            builder.add_records(dataset.records[start : start + 500])
        assert builder.spilled_runs > 0
        source = builder.build(shards=3, workers=2)
        release = _release(source, workload)
        assert fingerprint(release.marginals) == EXPECTED_SHA256

    def test_spilled_write_store_reproduces_the_pin(self, tmp_path, wide_inputs):
        dataset, workload = wide_inputs
        builder = StreamingSourceBuilder(dataset.schema, memory_budget=1 << 16)
        for start in range(0, len(dataset.records), 500):
            builder.add_records(dataset.records[start : start + 500])
        assert builder.spilled_runs > 0
        path = builder.write_store(tmp_path / "store", shards=2)
        release = _release(path, workload)
        assert fingerprint(release.marginals) == EXPECTED_SHA256
