"""Crash-safe writes: a failure mid-put leaves the store fully old or fully new."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.data import synthetic_nltcs
from repro.queries import all_k_way
from repro.serving.store import STORE_LAYOUTS, ReleaseStore
from repro.store import EncodedSourceWriter, open_source, write_source


@pytest.fixture(scope="module")
def release():
    data = synthetic_nltcs(n_records=800, rng=11)
    workload = all_k_way(data.schema, 1)
    return release_marginals(data, workload, 1.0, strategy="I", rng=11)


def _snapshot(root):
    return sorted(str(p.relative_to(root)) for p in root.rglob("*"))


class Boom(RuntimeError):
    pass


class TestReleaseStorePutAtomicity:
    @pytest.mark.parametrize("layout", STORE_LAYOUTS)
    def test_failure_between_marginals_and_meta_leaves_store_empty(
        self, tmp_path, monkeypatch, release, layout
    ):
        """Inject a crash after the marginal write, before meta.json."""
        root = tmp_path / "store"
        store = ReleaseStore(root, store_format=layout)
        baseline = _snapshot(root)

        original = ReleaseStore._write_marginals

        def explode(directory, written_layout, marginals):
            original(directory, written_layout, marginals)
            raise Boom("crash between marginals and meta.json")

        monkeypatch.setattr(ReleaseStore, "_write_marginals", staticmethod(explode))
        with pytest.raises(Boom):
            store.put(release, release_id="victim")
        monkeypatch.undo()

        # Fully old: no release directory, no staging debris, index unchanged.
        assert _snapshot(root) == baseline
        fresh = ReleaseStore(root, create=False)
        assert "victim" not in fresh
        assert len(fresh) == 0

    @pytest.mark.parametrize("layout", STORE_LAYOUTS)
    def test_failed_overwrite_keeps_the_old_release_intact(
        self, tmp_path, monkeypatch, release, layout
    ):
        root = tmp_path / "store"
        store = ReleaseStore(root, store_format=layout)
        store.put(release, release_id="r")
        before = _snapshot(root)

        def explode(directory, written_layout, marginals):
            raise Boom("crash before anything is written")

        monkeypatch.setattr(ReleaseStore, "_write_marginals", staticmethod(explode))
        with pytest.raises(Boom):
            store.put(release, release_id="r", overwrite=True)
        monkeypatch.undo()

        assert _snapshot(root) == before
        reloaded = ReleaseStore(root, create=False).get("r")
        for ours, exact in zip(reloaded.marginals, release.marginals):
            assert np.array_equal(np.asarray(ours), exact)

    @pytest.mark.parametrize("layout", STORE_LAYOUTS)
    def test_successful_put_is_fully_new(self, tmp_path, release, layout):
        root = tmp_path / "store"
        store = ReleaseStore(root, store_format=layout)
        release_id = store.put(release)
        # No staging debris survives a successful publish either.
        assert not list(root.glob(".stage-*"))
        assert not list(root.glob(".old-*"))
        assert release_id in ReleaseStore(root, create=False)


class TestEncodedSourceAtomicity:
    def test_crash_before_close_publishes_nothing(self, tmp_path):
        target = tmp_path / "src"
        with pytest.raises(Boom):
            with EncodedSourceWriter(target, dimension=8, shards=2) as writer:
                writer.append(np.array([1, 4, 9], dtype=np.int64), np.ones(3))
                raise Boom("crash mid-ingest")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_failed_overwrite_keeps_the_old_source(self, tmp_path):
        codes = np.array([0, 3, 5], dtype=np.int64)
        target = write_source(tmp_path / "src", codes, dimension=4)
        with pytest.raises(Boom):
            with EncodedSourceWriter(
                target, dimension=4, shards=1, overwrite=True
            ) as writer:
                writer.append(np.array([7], dtype=np.int64), np.ones(1))
                raise Boom("crash mid-rewrite")
        source = open_source(target, verify=True)
        assert np.array_equal(
            np.asarray(source._shards[0][0]), codes
        )  # old data intact
