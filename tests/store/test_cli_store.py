"""CLI storage knobs: ``--memory-budget`` streaming and ``--store-format``."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.cli import build_release_parser, main


@pytest.fixture
def survey_csv(tmp_path):
    rng = np.random.default_rng(8)
    path = tmp_path / "survey.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["smoker", "region", "income"])
        for _ in range(400):
            writer.writerow(
                [
                    "yes" if rng.random() < 0.3 else "no",
                    rng.choice(["north", "south", "east", "west"]),
                    rng.choice(["low", "mid", "high"]),
                ]
            )
    return path


def _query_json(store, attributes, capsys):
    exit_code = main(
        ["query", "--store", str(store), "--attributes", *attributes, "--json"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0, captured.err
    return json.loads(captured.out)


class TestParser:
    def test_store_knob_defaults(self):
        args = build_release_parser().parse_args(["--input", "x.csv"])
        assert args.memory_budget is None
        assert args.store_format is None

    def test_store_format_choices(self):
        with pytest.raises(SystemExit):
            build_release_parser().parse_args(
                ["--input", "x.csv", "--store-format", "v9"]
            )


class TestStreamedRelease:
    def test_streamed_release_matches_in_memory(self, survey_csv, tmp_path, capsys):
        """Same seed, with and without --memory-budget: identical answers."""
        common = [
            "release",
            "--input",
            str(survey_csv),
            "--k",
            "2",
            "--seed",
            "6",
        ]
        assert main(common + ["--out", str(tmp_path / "plain")]) == 0
        assert (
            main(
                common
                + [
                    "--out",
                    str(tmp_path / "streamed"),
                    "--memory-budget",
                    "64M",
                    "--store-format",
                    "v2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "v2 layout" in out

        plain = _query_json(tmp_path / "plain", ["smoker", "region"], capsys)
        streamed = _query_json(tmp_path / "streamed", ["smoker", "region"], capsys)
        assert plain["cells"] == streamed["cells"]

    def test_streamed_summary_reports_rows(self, survey_csv, capsys):
        exit_code = main(
            [
                "release",
                "--input",
                str(survey_csv),
                "--k",
                "1",
                "--seed",
                "1",
                "--memory-budget",
                "1M",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "400" in captured.out  # row count survives streaming

    def test_memory_budget_rejects_dense_backend(self, survey_csv, capsys):
        exit_code = main(
            [
                "release",
                "--input",
                str(survey_csv),
                "--k",
                "1",
                "--memory-budget",
                "1M",
                "--backend",
                "dense",
            ]
        )
        assert exit_code == 2
        assert "dense" in capsys.readouterr().err

    def test_bad_budget_reports_error(self, survey_csv, capsys):
        exit_code = main(
            [
                "release",
                "--input",
                str(survey_csv),
                "--k",
                "1",
                "--memory-budget",
                "lots",
            ]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err


class TestStoreFormat:
    def test_v1_and_v2_serve_identically(self, survey_csv, tmp_path, capsys):
        for layout in ("v1", "v2"):
            exit_code = main(
                [
                    "release",
                    "--input",
                    str(survey_csv),
                    "--k",
                    "2",
                    "--seed",
                    "9",
                    "--out",
                    str(tmp_path / layout),
                    "--store-format",
                    layout,
                ]
            )
            assert exit_code == 0
        capsys.readouterr()
        v1 = _query_json(tmp_path / "v1", ["region", "income"], capsys)
        v2 = _query_json(tmp_path / "v2", ["region", "income"], capsys)
        assert v1["cells"] == v2["cells"]
        release_dir = next(
            p for p in (tmp_path / "v2").iterdir() if p.is_dir()
        )
        assert (release_dir / "marginals").is_dir()
