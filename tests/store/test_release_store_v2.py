"""ReleaseStore v2 layout: memmap serving, v1 compat, targeted errors."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.data import synthetic_nltcs
from repro.exceptions import DataError, ServingError
from repro.queries import all_k_way
from repro.serving.service import QueryService
from repro.serving.store import (
    DEFAULT_STORE_LAYOUT,
    STORE_LAYOUTS,
    ReleaseStore,
    check_store_layout,
)


@pytest.fixture(scope="module")
def release():
    data = synthetic_nltcs(n_records=1500, rng=3)
    workload = all_k_way(data.schema, 2)
    return release_marginals(data, workload, 1.0, strategy="F", rng=3)


class TestLayouts:
    def test_check_store_layout(self):
        assert DEFAULT_STORE_LAYOUT == "v1"
        for layout in STORE_LAYOUTS:
            assert check_store_layout(layout) == layout
        with pytest.raises(ServingError, match="layout"):
            check_store_layout("v3")

    def test_v2_round_trip_is_bitwise(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "store", store_format="v2")
        release_id = store.put(release)
        reloaded = store.get(release_id)
        for ours, exact in zip(reloaded.marginals, release.marginals):
            assert np.array_equal(np.asarray(ours), exact)

    def test_v2_layout_on_disk(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "store", store_format="v2")
        release_id = store.put(release)
        directory = tmp_path / "store" / release_id
        assert (directory / "marginals").is_dir()
        assert not (directory / "marginals.npz").exists()
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["marginals_layout"] == "v2"
        assert meta["store_format_version"] == 2

    def test_v1_stays_version_1_for_old_readers(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "store")  # default layout
        release_id = store.put(release)
        directory = tmp_path / "store" / release_id
        assert (directory / "marginals.npz").exists()
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["store_format_version"] == 1

    def test_per_put_override_beats_the_store_default(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "store", store_format="v1")
        release_id = store.put(release, store_format="v2")
        assert (tmp_path / "store" / release_id / "marginals").is_dir()

    def test_v2_vectors_are_memmapped(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "store", store_format="v2")
        reloaded = store.get(store.put(release))
        assert any(
            isinstance(np.asarray(m).base, np.memmap) or isinstance(m, np.memmap)
            for m in reloaded.marginals
        )

    def test_service_answers_identically_across_layouts(self, tmp_path, release):
        answers = {}
        for layout in STORE_LAYOUTS:
            store = ReleaseStore(tmp_path / layout, store_format=layout)
            release_id = store.put(release)
            service = QueryService(ReleaseStore(tmp_path / layout, create=False))
            schema = release.workload.schema
            names = [attribute.name for attribute in schema.attributes[:2]]
            answers[layout] = service.query(names, release_id=release_id).values
        assert np.array_equal(answers["v1"], answers["v2"])

    def test_overwrite_switches_layout_in_place(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "store", store_format="v1")
        release_id = store.put(release, release_id="r")
        store.put(release, release_id="r", overwrite=True, store_format="v2")
        directory = tmp_path / "store" / "r"
        assert (directory / "marginals").is_dir()
        assert not (directory / "marginals.npz").exists()  # no v1 leftovers
        reloaded = store.get("r")
        for ours, exact in zip(reloaded.marginals, release.marginals):
            assert np.array_equal(np.asarray(ours), exact)

    def test_delete_removes_v2_vectors(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "store", store_format="v2")
        release_id = store.put(release)
        store.delete(release_id)
        assert not (tmp_path / "store" / release_id).exists()


class TestTargetedErrors:
    def test_missing_release_is_a_serving_error(self, tmp_path):
        store = ReleaseStore(tmp_path / "store")
        with pytest.raises(ServingError, match="no release"):
            store.get("nope")

    def test_missing_v1_archive_is_a_serving_error(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "store", store_format="v1")
        release_id = store.put(release)
        (tmp_path / "store" / release_id / "marginals.npz").unlink()
        with pytest.raises(ServingError, match="marginals.npz"):
            store.get(release_id)

    def test_missing_v1_array_is_a_data_error_naming_the_cuboid(
        self, tmp_path, release
    ):
        store = ReleaseStore(tmp_path / "store", store_format="v1")
        release_id = store.put(release)
        directory = tmp_path / "store" / release_id
        archive = np.load(directory / "marginals.npz")
        arrays = {key: archive[key] for key in archive.files}
        arrays.pop("marginal_00003")
        np.savez_compressed(directory / "marginals.npz", **arrays)
        with pytest.raises(DataError, match="marginal_00003.*cuboid 0x"):
            store.get(release_id)

    def test_missing_v2_vector_is_a_data_error_naming_the_cuboid(
        self, tmp_path, release
    ):
        store = ReleaseStore(tmp_path / "store", store_format="v2")
        release_id = store.put(release)
        directory = tmp_path / "store" / release_id
        (directory / "marginals" / "marginal_00001.npy").unlink()
        with pytest.raises(DataError, match="marginal_00001.*cuboid 0x"):
            store.get(release_id)

    def test_missing_v2_directory_is_a_serving_error(self, tmp_path, release):
        import shutil

        store = ReleaseStore(tmp_path / "store", store_format="v2")
        release_id = store.put(release)
        shutil.rmtree(tmp_path / "store" / release_id / "marginals")
        with pytest.raises(ServingError, match="marginals/"):
            store.get(release_id)
