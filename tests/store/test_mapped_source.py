"""MappedRecordSource: bitwise kernels off memmap, planner I/O costing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.plan.cost import cost_marginal_batches
from repro.plan.lattice import MarginalBatch
from repro.sources import RecordSource
from repro.store import open_source, write_source
from repro.store.mapped import IO_COST_FACTOR, MappedRecordSource


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    rng = np.random.default_rng(5)
    codes = rng.integers(0, 1 << 16, 20_000, dtype=np.int64)
    path = tmp_path_factory.mktemp("mapped") / "src"
    write_source(path, codes, dimension=16, shards=4)
    return path, codes


class TestMappedKernels:
    def test_marginals_match_record_source(self, stored):
        path, codes = stored
        mapped = open_source(path, workers=2)
        reference = RecordSource(codes, dimension=16)
        for mask in (0b1, 0b11011, (1 << 16) - 1, 0b1111000011110000):
            assert np.array_equal(mapped.marginal(mask), reference.marginal(mask))

    def test_batched_marginals_match(self, stored):
        path, codes = stored
        mapped = open_source(path)
        reference = RecordSource(codes, dimension=16)
        root = (1 << 12) - 1
        members = [0b11, 0b1100, 0b111000000000]
        ours = mapped.marginals_for_batches([(root, members)])
        exact = reference.marginals_for_batches([(root, members)])
        for mask in members:
            assert np.array_equal(ours[mask], exact[mask])

    def test_dense_vector_matches(self, stored):
        path, codes = stored
        mapped = open_source(path)
        reference = RecordSource(codes, dimension=16)
        assert np.array_equal(mapped.dense_vector(), reference.dense_vector())

    def test_repeat_scans_after_page_release(self, stored):
        # madvise(DONTNEED) must not invalidate the mapping: the same
        # marginal computed twice (cold, then after release) is identical.
        path, codes = stored
        mapped = open_source(path, marginal_cache_size=0)
        first = mapped.marginal(0b101)
        second = mapped.marginal(0b101)
        assert np.array_equal(first, second)


class TestMappedConstruction:
    def test_rejects_process_executor(self, stored):
        path, _ = stored
        mapped = open_source(path)
        with pytest.raises(DataError, match="process pool"):
            MappedRecordSource(
                mapped._shards, dimension=16, executor="process"
            )

    def test_totals_come_from_the_manifest(self, stored):
        path, codes = stored
        mapped = open_source(path)
        reference = RecordSource(codes, dimension=16)
        assert mapped.distinct_records == reference.distinct_records
        assert mapped.total == reference.total
        assert mapped.bytes_mapped == 16 * reference.distinct_records

    def test_describe_layout_mentions_the_mapping(self, stored):
        path, _ = stored
        assert "memory-mapped" in open_source(path).describe_layout()

    def test_memory_budget_caps_the_memo(self, stored):
        path, _ = stored
        capped = open_source(path, memory_budget=1 << 20)
        uncapped = open_source(path)
        assert capped._memo._max_cells == (1 << 20) // 32
        assert uncapped._memo._max_cells > capped._memo._max_cells


class TestMappedCosting:
    def test_direct_scans_price_in_io(self, stored):
        path, codes = stored
        mapped = open_source(path, workers=1)
        reference = RecordSource(codes, dimension=16)
        mask = 0b111
        assert mapped.marginal_cost(mask) == pytest.approx(
            reference.marginal_cost(mask)
            + IO_COST_FACTOR * mapped.distinct_records,
            rel=0.3,
        )
        # Derivation stays in memory: no I/O term.
        assert mapped.derive_cost(0b111, 0b011) < IO_COST_FACTOR * mapped.distinct_records

    def test_batch_costs_prefer_the_shared_root(self, stored):
        path, _ = stored
        mapped = open_source(path, workers=1)
        batch = MarginalBatch(root=(1 << 10) - 1, members=(0b11, 0b1100, 0b110000))
        (cost,) = cost_marginal_batches(mapped, [batch])
        # One mapped scan plus in-memory refinements beats four mapped scans.
        assert cost.use_root
        assert cost.root_cost < cost.direct_cost

    def test_budget_vetoes_oversized_roots(self, tmp_path):
        """A root vector that would blow the memory budget is never chosen,
        even when the I/O estimates alone favour the shared scan."""
        rng = np.random.default_rng(11)
        codes = rng.integers(0, 1 << 20, 200_000, dtype=np.int64)
        path = write_source(tmp_path / "src", codes, dimension=20, shards=4)
        budgeted = open_source(path, workers=1, memory_budget=1 << 20)
        unbudgeted = open_source(path, workers=1)
        ceiling = budgeted.max_root_cells()
        assert ceiling is not None and unbudgeted.max_root_cells() is None
        root = (1 << 17) - 1  # 131072 cells, over the budgeted ceiling
        assert (1 << 17) > ceiling
        batch = MarginalBatch(root=root, members=(0b11, 0b1100, 0b110000))
        (vetoed,) = cost_marginal_batches(budgeted, [batch])
        (free,) = cost_marginal_batches(unbudgeted, [batch])
        assert free.use_root and not vetoed.use_root
        assert not budgeted.prefers_batch_root(root)
        assert unbudgeted.prefers_batch_root(root)
        # Trivial batches are exempt: the workload demands that vector anyway.
        trivial = MarginalBatch(root=root, members=(root,))
        (cost,) = cost_marginal_batches(budgeted, [trivial])
        assert cost.use_root
