"""StreamingSourceBuilder under a memory budget: spills, merges, write_store."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.shards import StreamingSourceBuilder
from repro.sources import RecordSource
from repro.store import open_source, write_source


def _batches(d, count, size, seed):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 1 << d, size, dtype=np.int64) for _ in range(count)]


def _file_digests(path):
    return {
        item.name: hashlib.sha256(item.read_bytes()).hexdigest()
        for item in sorted(path.iterdir())
        if item.suffix == ".npy"
    }


class TestSpillingBuilder:
    def test_budget_triggers_spills(self, tmp_path):
        builder = StreamingSourceBuilder(
            dimension=20, memory_budget=1 << 20, spill_dir=tmp_path / "spill"
        )
        for batch in _batches(20, 12, 20_000, 3):
            builder.add_codes(batch)
        assert builder.memory_budget == 1 << 20
        assert builder.spilled_runs > 0
        assert builder.spilled_bytes > 0

    def test_spilled_arrays_equal_unbounded_build(self, tmp_path):
        batches = _batches(18, 10, 15_000, 9)
        spilling = StreamingSourceBuilder(dimension=18, memory_budget="1M")
        plain = StreamingSourceBuilder(dimension=18)
        for batch in batches:
            spilling.add_codes(batch)
            plain.add_codes(batch)
        assert spilling.spilled_runs > 0
        s_codes, s_weights = spilling.arrays()
        p_codes, p_weights = plain.arrays()
        assert np.array_equal(s_codes, p_codes)
        assert np.array_equal(s_weights, p_weights)
        reference = RecordSource(np.concatenate(batches), dimension=18)
        assert np.array_equal(s_codes, reference.codes)
        assert np.array_equal(s_weights, reference.weights)

    def test_built_source_is_bitwise_identical(self):
        batches = _batches(22, 8, 10_000, 1)
        spilling = StreamingSourceBuilder(dimension=22, memory_budget="1M")
        for batch in batches:
            spilling.add_codes(batch)
        source = spilling.build(shards=3, workers=1)
        reference = RecordSource(np.concatenate(batches), dimension=22)
        for mask in (0b1, 0b110011, (1 << 22) - 1):
            assert np.array_equal(source.marginal(mask), reference.marginal(mask))


class TestWriteStore:
    def test_streamed_store_is_byte_identical_to_one_shot(self, tmp_path):
        batches = _batches(20, 10, 15_000, 21)
        builder = StreamingSourceBuilder(dimension=20, memory_budget="1M")
        for batch in batches:
            builder.add_codes(batch)
        assert builder.spilled_runs > 0
        streamed = builder.write_store(tmp_path / "streamed", shards=5)

        reference = RecordSource(np.concatenate(batches), dimension=20)
        one_shot = write_source(
            tmp_path / "one-shot",
            reference.codes,
            reference.weights,
            dimension=20,
            shards=5,
        )
        assert _file_digests(streamed) == _file_digests(one_shot)

    def test_store_without_budget_also_streams(self, tmp_path):
        batches = _batches(16, 4, 5_000, 2)
        builder = StreamingSourceBuilder(dimension=16)
        for batch in batches:
            builder.add_codes(batch)
        path = builder.write_store(tmp_path / "store", shards=2)
        source = open_source(path, verify=True)
        reference = RecordSource(np.concatenate(batches), dimension=16)
        assert source.total == reference.total
        assert np.array_equal(source.marginal(0b111), reference.marginal(0b111))

    def test_ingestion_continues_after_write_store(self, tmp_path):
        first = _batches(16, 3, 5_000, 4)
        second = _batches(16, 3, 5_000, 5)
        builder = StreamingSourceBuilder(dimension=16, memory_budget="1M")
        for batch in first:
            builder.add_codes(batch)
        builder.write_store(tmp_path / "early", shards=2)
        for batch in second:
            builder.add_codes(batch)
        path = builder.write_store(tmp_path / "late", shards=2, overwrite=True)
        reference = RecordSource(np.concatenate(first + second), dimension=16)
        late = open_source(path)
        assert late.distinct_records == reference.distinct_records
        assert np.array_equal(late.marginal(0b11), reference.marginal(0b11))

    def test_release_from_streamed_store_matches_in_memory(self, tmp_path):
        from repro.core.engine import release_marginals
        from repro.domain import Schema
        from repro.queries import all_k_way

        d = 12
        schema = Schema.binary([f"b{i}" for i in range(d)])
        batches = _batches(d, 6, 8_000, 7)
        builder = StreamingSourceBuilder(schema, memory_budget="1M")
        for batch in batches:
            builder.add_codes(batch)
        path = builder.write_store(tmp_path / "store")
        workload = all_k_way(schema, 2)
        from_disk = release_marginals(path, workload, 1.0, strategy="F", rng=17)
        reference = RecordSource(
            np.concatenate(batches), dimension=d, schema=schema
        )
        in_memory = release_marginals(reference, workload, 1.0, strategy="F", rng=17)
        for ours, exact in zip(from_disk.marginals, in_memory.marginals):
            assert np.array_equal(ours, exact)
