"""Disk-spilled sorted runs and their bounded-memory k-way merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.store.layout import parse_memory_budget
from repro.store.spill import (
    RunSpiller,
    merge_sorted_runs,
    spill_threshold_entries,
)


def _run(rng, size, top):
    codes = np.unique(rng.integers(0, top, size, dtype=np.int64))
    weights = rng.integers(1, 5, codes.shape[0]).astype(np.float64)
    return codes, weights


def _reference_merge(runs):
    codes = np.concatenate([r[0] for r in runs])
    weights = np.concatenate([r[1] for r in runs])
    unique, inverse = np.unique(codes, return_inverse=True)
    summed = np.bincount(inverse, weights=weights, minlength=unique.shape[0])
    return unique, summed


class TestParseMemoryBudget:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64M", 64 << 20),
            ("64MiB", 64 << 20),
            ("1G", 1 << 30),
            ("2GB", 2 << 30),
            ("128K", 128 << 10),
            ("1.5M", int(1.5 * (1 << 20))),
            (1 << 20, 1 << 20),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_memory_budget(text) == expected

    @pytest.mark.parametrize("bad", ["", "lots", "-5M", "12Q", 0, 1024])
    def test_rejected_forms(self, bad):
        with pytest.raises(DataError):
            parse_memory_budget(bad)

    def test_threshold_scales_with_budget(self):
        assert spill_threshold_entries(1 << 20) < spill_threshold_entries(1 << 26)
        assert spill_threshold_entries(1 << 16) >= 1024  # floor


class TestRunSpiller:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        spiller = RunSpiller(tmp_path / "runs")
        stored = [_run(rng, 500, 1 << 20) for _ in range(3)]
        for codes, weights in stored:
            spiller.spill(codes, weights)
        assert spiller.run_count == 3
        assert spiller.bytes_spilled > 0
        for (codes, weights), (back_codes, back_weights) in zip(
            stored, spiller.open_runs()
        ):
            assert np.array_equal(np.asarray(back_codes), codes)
            assert np.array_equal(np.asarray(back_weights), weights)

    def test_cleanup_removes_files(self, tmp_path):
        spiller = RunSpiller(tmp_path / "runs")
        spiller.spill(np.array([1, 2, 3], dtype=np.int64), np.ones(3))
        directory = spiller.directory
        assert directory is not None and any(directory.iterdir())
        spiller.cleanup()
        assert spiller.run_count == 0
        # A caller-provided directory is kept (not owned); its files are gone.
        assert list(directory.iterdir()) == []

    def test_cleanup_removes_owned_temp_directory(self):
        spiller = RunSpiller()
        spiller.spill(np.array([1, 2, 3], dtype=np.int64), np.ones(3))
        directory = spiller.directory
        assert directory is not None and directory.exists()
        spiller.cleanup()
        assert not directory.exists()


class TestMergeSortedRuns:
    def test_matches_one_shot_dedup(self, tmp_path):
        rng = np.random.default_rng(7)
        runs = [_run(rng, size, 1 << 16) for size in (900, 1300, 400, 2000)]
        chunks = list(merge_sorted_runs(runs, chunk_entries=256))
        merged_codes = np.concatenate([c for c, _ in chunks])
        merged_weights = np.concatenate([w for _, w in chunks])
        exact_codes, exact_weights = _reference_merge(runs)
        assert np.array_equal(merged_codes, exact_codes)
        assert np.array_equal(merged_weights, exact_weights)

    def test_chunks_are_strictly_increasing_and_disjoint(self):
        rng = np.random.default_rng(3)
        runs = [_run(rng, 1500, 1 << 14) for _ in range(5)]
        last = -1
        for codes, weights in merge_sorted_runs(runs, chunk_entries=128):
            assert codes.shape == weights.shape
            assert int(codes[0]) > last
            assert bool((np.diff(codes) > 0).all()) if codes.shape[0] > 1 else True
            last = int(codes[-1])

    def test_merges_memmapped_runs(self, tmp_path):
        rng = np.random.default_rng(11)
        spiller = RunSpiller(tmp_path / "runs")
        runs = [_run(rng, 800, 1 << 18) for _ in range(4)]
        for codes, weights in runs:
            spiller.spill(codes, weights)
        chunks = list(merge_sorted_runs(spiller.open_runs(), chunk_entries=512))
        merged = np.concatenate([c for c, _ in chunks])
        exact_codes, _ = _reference_merge(runs)
        assert np.array_equal(merged, exact_codes)
        spiller.cleanup()

    def test_single_run_passes_through(self):
        codes = np.arange(10, dtype=np.int64) * 3
        weights = np.ones(10)
        chunks = list(merge_sorted_runs([(codes, weights)], chunk_entries=4))
        assert np.array_equal(np.concatenate([c for c, _ in chunks]), codes)

    def test_empty_input_yields_nothing(self):
        assert list(merge_sorted_runs([])) == []
