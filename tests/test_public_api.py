"""Public API surface tests.

These guard the names exported from ``repro`` (the ones README and the
examples rely on) so refactors cannot silently break downstream users.
"""

from __future__ import annotations

import importlib

import pytest

import repro


EXPECTED_EXPORTS = [
    "Attribute",
    "Schema",
    "Dataset",
    "ContingencyTable",
    "CountSource",
    "DenseCubeSource",
    "RecordSource",
    "as_count_source",
    "MarginalQuery",
    "MarginalWorkload",
    "all_k_way",
    "star_workload",
    "anchored_workload",
    "datacube_workload",
    "PrivacyBudget",
    "GroupSpec",
    "NoiseAllocation",
    "optimal_allocation",
    "uniform_allocation",
    "Strategy",
    "IdentityStrategy",
    "MarginalSetStrategy",
    "FourierStrategy",
    "ClusteringStrategy",
    "ExplicitMatrixStrategy",
    "query_strategy",
    "make_strategy",
    "fourier_consistency",
    "make_consistent",
    "MarginalReleaseEngine",
    "ReleaseResult",
    "release_marginals",
    "table1_bounds",
]


class TestTopLevelExports:
    @pytest.mark.parametrize("name", EXPECTED_EXPORTS)
    def test_name_is_exported(self, name):
        assert hasattr(repro, name), f"repro.{name} missing from the public API"
        assert name in repro.__all__

    def test_all_matches_attributes(self):
        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2


class TestSubpackageImports:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.domain",
            "repro.queries",
            "repro.transforms",
            "repro.mechanisms",
            "repro.budget",
            "repro.strategies",
            "repro.recovery",
            "repro.core",
            "repro.analysis",
            "repro.data",
            "repro.cli",
            "repro.exceptions",
            "repro.utils",
        ],
    )
    def test_module_imports_cleanly(self, module):
        importlib.import_module(module)

    def test_exceptions_share_base_class(self):
        from repro import exceptions

        subclasses = [
            exceptions.SchemaError,
            exceptions.DomainSizeError,
            exceptions.WorkloadError,
            exceptions.PrivacyError,
            exceptions.BudgetError,
            exceptions.GroupingError,
            exceptions.RecoveryError,
            exceptions.ConsistencyError,
            exceptions.DataError,
        ]
        for subclass in subclasses:
            assert issubclass(subclass, exceptions.ReproError)

    def test_data_namespace(self):
        from repro import data

        for name in (
            "synthetic_adult",
            "synthetic_nltcs",
            "load_adult_csv",
            "load_nltcs_csv",
            "load_csv",
            "ADULT_SCHEMA",
            "NLTCS_SCHEMA",
        ):
            assert hasattr(data, name)

    def test_docstrings_on_public_entry_points(self):
        """Every public callable re-exported at the top level is documented."""
        for name in EXPECTED_EXPORTS:
            attr = getattr(repro, name)
            if callable(attr):
                assert attr.__doc__, f"repro.{name} has no docstring"
