"""Tests for the Laplace and Gaussian mechanisms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import PrivacyError
from repro.mechanisms import GaussianMechanism, LaplaceMechanism, PrivacyBudget


class TestLaplaceMechanism:
    def test_release_adds_noise_of_right_variance(self):
        mechanism = LaplaceMechanism(rng=0)
        values = np.zeros(100_000)
        noisy = mechanism.release(values, sensitivity=2.0, budget=1.0)
        assert noisy.var() == pytest.approx(2.0 * (2.0 / 1.0) ** 2, rel=0.05)

    def test_release_is_unbiased(self):
        mechanism = LaplaceMechanism(rng=1)
        values = np.full(100_000, 10.0)
        noisy = mechanism.release(values, sensitivity=1.0, budget=2.0)
        assert noisy.mean() == pytest.approx(10.0, abs=0.05)

    def test_accepts_privacy_budget(self):
        mechanism = LaplaceMechanism(rng=0)
        noisy = mechanism.release(np.zeros(10), sensitivity=1.0, budget=PrivacyBudget.pure(1.0))
        assert noisy.shape == (10,)

    def test_rejects_approximate_budget(self):
        mechanism = LaplaceMechanism(rng=0)
        with pytest.raises(PrivacyError):
            mechanism.release(
                np.zeros(3), sensitivity=1.0, budget=PrivacyBudget.approximate(1.0, 1e-6)
            )

    def test_rejects_bad_parameters(self):
        mechanism = LaplaceMechanism(rng=0)
        with pytest.raises(PrivacyError):
            mechanism.release(np.zeros(3), sensitivity=0.0, budget=1.0)
        with pytest.raises(PrivacyError):
            mechanism.release(np.zeros(3), sensitivity=1.0, budget=-1.0)

    def test_release_with_budgets_per_row_variance(self):
        mechanism = LaplaceMechanism(rng=0)
        budgets = np.array([0.5] * 50_000 + [2.0] * 50_000)
        noisy = mechanism.release_with_budgets(np.zeros(100_000), budgets)
        assert noisy[:50_000].var() == pytest.approx(2.0 / 0.25, rel=0.05)
        assert noisy[50_000:].var() == pytest.approx(2.0 / 4.0, rel=0.05)

    def test_release_with_budgets_shape_check(self):
        mechanism = LaplaceMechanism(rng=0)
        with pytest.raises(PrivacyError):
            mechanism.release_with_budgets(np.zeros(5), np.ones(4))

    def test_noise_variance_formula(self):
        mechanism = LaplaceMechanism()
        assert mechanism.noise_variance(sensitivity=3.0, epsilon=1.5) == pytest.approx(
            2.0 * (3.0 / 1.5) ** 2
        )

    def test_reproducible_with_seed(self):
        a = LaplaceMechanism(rng=42).release(np.zeros(20), sensitivity=1.0, budget=1.0)
        b = LaplaceMechanism(rng=42).release(np.zeros(20), sensitivity=1.0, budget=1.0)
        assert np.array_equal(a, b)


class TestGaussianMechanism:
    def test_release_adds_noise_of_right_variance(self):
        delta = 1e-5
        mechanism = GaussianMechanism(rng=0)
        noisy = mechanism.release(
            np.zeros(100_000), sensitivity=1.0, budget=PrivacyBudget.approximate(1.0, delta)
        )
        expected = 2.0 * math.log(2.0 / delta)
        assert noisy.var() == pytest.approx(expected, rel=0.05)

    def test_accepts_tuple_budget(self):
        mechanism = GaussianMechanism(rng=0)
        noisy = mechanism.release(np.zeros(10), sensitivity=1.0, budget=(1.0, 1e-6))
        assert noisy.shape == (10,)

    def test_rejects_pure_budget(self):
        mechanism = GaussianMechanism(rng=0)
        with pytest.raises(PrivacyError):
            mechanism.release(np.zeros(3), sensitivity=1.0, budget=PrivacyBudget.pure(1.0))

    def test_rejects_bad_parameters(self):
        mechanism = GaussianMechanism(rng=0)
        with pytest.raises(PrivacyError):
            mechanism.release(np.zeros(3), sensitivity=-1.0, budget=(1.0, 1e-6))
        with pytest.raises(PrivacyError):
            mechanism.release(np.zeros(3), sensitivity=1.0, budget=(0.0, 1e-6))

    def test_release_with_budgets(self):
        delta = 1e-4
        mechanism = GaussianMechanism(rng=0)
        budgets = np.full(100_000, 2.0)
        noisy = mechanism.release_with_budgets(np.zeros(100_000), budgets, delta=delta)
        assert noisy.var() == pytest.approx(2.0 * math.log(2.0 / delta) / 4.0, rel=0.05)

    def test_release_with_budgets_shape_check(self):
        mechanism = GaussianMechanism(rng=0)
        with pytest.raises(PrivacyError):
            mechanism.release_with_budgets(np.zeros(5), np.ones(4), delta=1e-6)

    def test_noise_variance_formula(self):
        mechanism = GaussianMechanism()
        delta = 1e-6
        assert mechanism.noise_variance(sensitivity=2.0, epsilon=0.5, delta=delta) == pytest.approx(
            2.0 * 4.0 * math.log(2.0 / delta) / 0.25
        )
