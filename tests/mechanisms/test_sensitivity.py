"""Tests for sensitivity computations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PrivacyError
from repro.mechanisms.sensitivity import (
    l1_sensitivity,
    l2_sensitivity,
    lp_sensitivity,
    neighboring_factor,
    weighted_l1_column_bound,
    weighted_l2_column_bound,
)
from repro.queries.matrix import fourier_basis_matrix, workload_matrix


class TestNeighboringFactor:
    def test_values(self):
        assert neighboring_factor("add_remove") == 1.0
        assert neighboring_factor("replace") == 2.0

    def test_invalid(self):
        with pytest.raises(PrivacyError):
            neighboring_factor("swap")


class TestMatrixSensitivity:
    def test_identity(self):
        identity = np.eye(8)
        assert l1_sensitivity(identity) == 1.0
        assert l2_sensitivity(identity) == 1.0

    def test_replace_doubles(self):
        identity = np.eye(4)
        assert l1_sensitivity(identity, neighboring="replace") == 2.0

    def test_figure_1b_query_matrix(self, paper_example_workload):
        # Every column of Q (marginal on A plus marginal on A,B) has two ones.
        q = workload_matrix(paper_example_workload)
        assert l1_sensitivity(q) == 2.0
        assert l2_sensitivity(q) == pytest.approx(np.sqrt(2.0))

    def test_fourier_matrix(self):
        d = 4
        f = fourier_basis_matrix(d)
        assert l1_sensitivity(f) == pytest.approx(2.0 ** (d / 2.0))
        assert l2_sensitivity(f) == pytest.approx(1.0)

    def test_lp_general(self):
        matrix = np.array([[1.0, 0.0], [2.0, 1.0]])
        assert lp_sensitivity(matrix, 1) == 3.0
        assert lp_sensitivity(matrix, 2) == pytest.approx(np.sqrt(5.0))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            l1_sensitivity(np.zeros(3))
        with pytest.raises(ValueError):
            lp_sensitivity(np.eye(2), 0)


class TestWeightedColumnBounds:
    def test_uniform_budgets_reduce_to_sensitivity(self, paper_example_workload):
        q = workload_matrix(paper_example_workload)
        eps = np.full(q.shape[0], 0.5)
        assert weighted_l1_column_bound(q, eps) == pytest.approx(0.5 * l1_sensitivity(q))
        assert weighted_l2_column_bound(q, eps) == pytest.approx(0.5 * l2_sensitivity(q))

    def test_non_uniform_example(self, paper_example_workload):
        """The introduction's allocation: 4eps/9 on the A marginal rows and
        5eps/9 on the A,B rows exactly exhausts the budget eps."""
        q = workload_matrix(paper_example_workload)
        eps = 1.3
        budgets = np.array([4 * eps / 9] * 2 + [5 * eps / 9] * 4)
        assert weighted_l1_column_bound(q, budgets) == pytest.approx(eps)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_l1_column_bound(np.eye(3), np.ones(2))
        with pytest.raises(ValueError):
            weighted_l2_column_bound(np.eye(3), np.ones(4))
