"""Tests for the privacy accountant."""

from __future__ import annotations

import pytest

from repro.exceptions import PrivacyError
from repro.mechanisms import PrivacyBudget
from repro.mechanisms.accountant import LedgerEntry, PrivacyAccountant


class TestBasicAccounting:
    def test_initial_state(self):
        accountant = PrivacyAccountant(PrivacyBudget.pure(1.0))
        assert accountant.spent_epsilon() == 0.0
        assert accountant.remaining().epsilon == pytest.approx(1.0)
        assert accountant.entries == []

    def test_requires_budget_object(self):
        with pytest.raises(PrivacyError):
            PrivacyAccountant(1.0)  # type: ignore[arg-type]

    def test_charging_accumulates(self):
        accountant = PrivacyAccountant(PrivacyBudget.pure(1.0))
        accountant.charge(PrivacyBudget.pure(0.3), label="first")
        accountant.charge(PrivacyBudget.pure(0.2), label="second")
        assert accountant.spent_epsilon() == pytest.approx(0.5)
        assert accountant.remaining().epsilon == pytest.approx(0.5)
        assert [entry.label for entry in accountant.entries] == ["first", "second"]

    def test_spent_requires_a_charge(self):
        accountant = PrivacyAccountant(PrivacyBudget.pure(1.0))
        with pytest.raises(PrivacyError):
            accountant.spent()
        accountant.charge(PrivacyBudget.pure(0.1))
        assert accountant.spent().epsilon == pytest.approx(0.1)

    def test_overspending_rejected(self):
        accountant = PrivacyAccountant(PrivacyBudget.pure(0.5))
        accountant.charge(PrivacyBudget.pure(0.4))
        with pytest.raises(PrivacyError):
            accountant.charge(PrivacyBudget.pure(0.2))
        # The failed charge is not recorded.
        assert accountant.spent_epsilon() == pytest.approx(0.4)

    def test_exact_exhaustion_allowed_then_no_remaining(self):
        accountant = PrivacyAccountant(PrivacyBudget.pure(0.5))
        accountant.charge(PrivacyBudget.pure(0.5))
        with pytest.raises(PrivacyError):
            accountant.remaining()

    def test_can_afford(self):
        accountant = PrivacyAccountant(PrivacyBudget.pure(1.0))
        assert accountant.can_afford(PrivacyBudget.pure(1.0))
        accountant.charge(PrivacyBudget.pure(0.7))
        assert accountant.can_afford(PrivacyBudget.pure(0.3))
        assert not accountant.can_afford(PrivacyBudget.pure(0.4))


class TestApproximateBudgets:
    def test_delta_accumulates(self):
        accountant = PrivacyAccountant(PrivacyBudget.approximate(1.0, 1e-5))
        accountant.charge(PrivacyBudget.approximate(0.5, 4e-6))
        assert accountant.spent_delta() == pytest.approx(4e-6)
        remaining = accountant.remaining()
        assert remaining.epsilon == pytest.approx(0.5)
        assert remaining.delta == pytest.approx(6e-6)

    def test_delta_overspend_rejected(self):
        accountant = PrivacyAccountant(PrivacyBudget.approximate(1.0, 1e-6))
        with pytest.raises(PrivacyError):
            accountant.charge(PrivacyBudget.approximate(0.1, 1e-5))

    def test_approximate_charge_against_pure_budget_rejected(self):
        accountant = PrivacyAccountant(PrivacyBudget.pure(1.0))
        with pytest.raises(PrivacyError):
            accountant.charge(PrivacyBudget.approximate(0.1, 1e-6))

    def test_pure_charge_against_approximate_budget_allowed(self):
        accountant = PrivacyAccountant(PrivacyBudget.approximate(1.0, 1e-6))
        accountant.charge(PrivacyBudget.pure(0.4))
        assert accountant.remaining().delta == pytest.approx(1e-6)


class TestChargeRelease:
    def test_charges_release_result(self, small_dataset):
        from repro import all_k_way, release_marginals

        workload = all_k_way(small_dataset.schema, 1)
        result = release_marginals(small_dataset, workload, budget=0.25, strategy="F", rng=0)
        accountant = PrivacyAccountant(PrivacyBudget.pure(1.0))
        accountant.charge_release(result)
        assert accountant.spent_epsilon() == pytest.approx(0.25)
        assert accountant.entries[0].label == "F:Q1"

    def test_repr(self):
        accountant = PrivacyAccountant(PrivacyBudget.pure(2.0))
        accountant.charge(PrivacyBudget.pure(0.5))
        assert "0.5" in repr(accountant)
        assert "releases=1" in repr(accountant)
