"""Tests for the noise samplers and budget/parameter conversions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import PrivacyError
from repro.mechanisms.noise import (
    gaussian_noise,
    gaussian_sigma_for_budget,
    gaussian_variance_for_budget,
    laplace_noise,
    laplace_scale_for_budget,
    laplace_variance_for_budget,
)


class TestConversions:
    def test_laplace_scale(self):
        assert laplace_scale_for_budget(2.0) == pytest.approx(0.5)
        assert np.allclose(laplace_scale_for_budget(np.array([1.0, 4.0])), [1.0, 0.25])

    def test_laplace_variance(self):
        # Proposition 3.1(i): variance 2 / eps_i**2.
        assert laplace_variance_for_budget(1.0) == pytest.approx(2.0)
        assert laplace_variance_for_budget(2.0) == pytest.approx(0.5)

    def test_laplace_variance_is_scale_relation(self):
        eps = np.array([0.3, 1.7, 4.0])
        assert np.allclose(
            laplace_variance_for_budget(eps), 2.0 * laplace_scale_for_budget(eps) ** 2
        )

    def test_gaussian_variance(self):
        # Proposition 3.1(ii): variance 2 log(2/delta) / eps_i**2.
        delta = 1e-5
        assert gaussian_variance_for_budget(1.0, delta) == pytest.approx(
            2.0 * math.log(2.0 / delta)
        )

    def test_gaussian_sigma_matches_variance(self):
        delta = 1e-4
        eps = np.array([0.5, 2.0])
        assert np.allclose(
            gaussian_sigma_for_budget(eps, delta) ** 2,
            gaussian_variance_for_budget(eps, delta),
        )

    @pytest.mark.parametrize("value", [0.0, -1.0, np.inf])
    def test_invalid_budgets_rejected(self, value):
        with pytest.raises(PrivacyError):
            laplace_scale_for_budget(value)
        with pytest.raises(PrivacyError):
            gaussian_sigma_for_budget(value, 1e-6)


class TestLaplaceSampler:
    def test_reproducible(self):
        a = laplace_noise(1.0, 100, rng=7)
        b = laplace_noise(1.0, 100, rng=7)
        assert np.array_equal(a, b)

    def test_empirical_variance(self):
        scale = 2.0
        samples = laplace_noise(scale, 200_000, rng=0)
        assert samples.var() == pytest.approx(2.0 * scale**2, rel=0.05)
        assert samples.mean() == pytest.approx(0.0, abs=0.05)

    def test_per_component_scales(self):
        scales = np.array([0.5] * 50_000 + [5.0] * 50_000)
        samples = laplace_noise(scales, 100_000, rng=1)
        assert samples[:50_000].var() == pytest.approx(2.0 * 0.25, rel=0.1)
        assert samples[50_000:].var() == pytest.approx(2.0 * 25.0, rel=0.1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PrivacyError):
            laplace_noise(np.array([1.0, 2.0]), 3, rng=0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(PrivacyError):
            laplace_noise(0.0, 5, rng=0)


class TestGaussianSampler:
    def test_reproducible(self):
        a = gaussian_noise(1.0, 100, rng=3)
        b = gaussian_noise(1.0, 100, rng=3)
        assert np.array_equal(a, b)

    def test_empirical_variance(self):
        sigma = 3.0
        samples = gaussian_noise(sigma, 200_000, rng=0)
        assert samples.var() == pytest.approx(sigma**2, rel=0.05)

    def test_per_component_sigmas(self):
        sigmas = np.array([1.0] * 50_000 + [4.0] * 50_000)
        samples = gaussian_noise(sigmas, 100_000, rng=2)
        assert samples[:50_000].var() == pytest.approx(1.0, rel=0.1)
        assert samples[50_000:].var() == pytest.approx(16.0, rel=0.1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(PrivacyError):
            gaussian_noise(np.array([1.0, 2.0, 3.0]), 2, rng=0)
