"""Tests for privacy budgets."""

from __future__ import annotations

import pytest

from repro.exceptions import PrivacyError
from repro.mechanisms import PrivacyBudget


class TestConstruction:
    def test_pure(self):
        budget = PrivacyBudget.pure(0.5)
        assert budget.epsilon == 0.5
        assert budget.delta == 0.0
        assert budget.is_pure and not budget.is_approximate

    def test_approximate(self):
        budget = PrivacyBudget.approximate(1.0, 1e-6)
        assert budget.is_approximate and not budget.is_pure

    @pytest.mark.parametrize("epsilon", [0.0, -1.0])
    def test_invalid_epsilon(self, epsilon):
        with pytest.raises(PrivacyError):
            PrivacyBudget(epsilon)

    @pytest.mark.parametrize("delta", [-0.1, 1.0, 2.0])
    def test_invalid_delta(self, delta):
        with pytest.raises(PrivacyError):
            PrivacyBudget(1.0, delta)

    def test_repr(self):
        assert "delta" not in repr(PrivacyBudget.pure(1.0))
        assert "delta" in repr(PrivacyBudget.approximate(1.0, 0.01))


class TestComposition:
    def test_compose_adds(self):
        combined = PrivacyBudget(0.3, 1e-7) + PrivacyBudget(0.2, 1e-7)
        assert combined.epsilon == pytest.approx(0.5)
        assert combined.delta == pytest.approx(2e-7)

    def test_split_equal(self):
        parts = PrivacyBudget.pure(1.0).split(4)
        assert len(parts) == 4
        assert all(p.epsilon == pytest.approx(0.25) for p in parts)
        total = sum((p.epsilon for p in parts))
        assert total == pytest.approx(1.0)

    def test_split_invalid(self):
        with pytest.raises(PrivacyError):
            PrivacyBudget.pure(1.0).split(0)

    def test_split_weighted(self):
        parts = PrivacyBudget.pure(1.0).split_weighted([1, 3])
        assert parts[0].epsilon == pytest.approx(0.25)
        assert parts[1].epsilon == pytest.approx(0.75)

    def test_split_weighted_rejects_zero_weight(self):
        with pytest.raises(PrivacyError):
            PrivacyBudget.pure(1.0).split_weighted([1, 0])

    def test_split_weighted_rejects_negatives(self):
        with pytest.raises(PrivacyError):
            PrivacyBudget.pure(1.0).split_weighted([-1, 2])

    def test_scaled(self):
        budget = PrivacyBudget.approximate(1.0, 1e-6).scaled(0.5)
        assert budget.epsilon == pytest.approx(0.5)
        assert budget.delta == pytest.approx(5e-7)

    def test_scaled_invalid(self):
        with pytest.raises(PrivacyError):
            PrivacyBudget.pure(1.0).scaled(0)
