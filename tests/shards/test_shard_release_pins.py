"""sha256-pinned wide-schema round trip on the sharded backend.

The acceptance scenario of the sharding layer: a d = 32 release measured on
a sharded, multi-worker source must reproduce the unsharded record-native
release **bit for bit** — pinned against a fingerprint captured on the
unsharded backend — and survive the engine → store → ``QueryService`` round
trip unchanged.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.domain import Dataset, Schema
from repro.queries import MarginalQuery, MarginalWorkload
from repro.serving import QueryService, ReleaseStore

D = 32

#: Captured from the *unsharded* record-native backend (PR 4 pipeline); every
#: sharded configuration must reproduce it exactly.
EXPECTED_SHA256 = "fa7bc711f5d6a31c53a1c69a7207e07c035066db7fa84f2ee1fbf9d9ed63d805"


def fingerprint(marginals) -> str:
    digest = hashlib.sha256()
    for marginal in marginals:
        digest.update(
            np.ascontiguousarray(np.asarray(marginal, dtype=np.float64)).tobytes()
        )
    return digest.hexdigest()


@pytest.fixture(scope="module")
def wide_inputs():
    schema = Schema.binary([f"a{i:02d}" for i in range(D)])
    rng = np.random.default_rng(2013)
    records = (rng.random((3000, D)) < 0.35).astype(np.int64)
    dataset = Dataset(schema, records, name="wide-32")
    masks = [1 << i for i in range(D)]
    masks += [(1 << i) | (1 << j) for i in range(8) for j in range(i + 1, 8)]
    masks += [0b111, (1 << 31) | (1 << 15) | 1]
    workload = MarginalWorkload(
        schema, [MarginalQuery(mask, D) for mask in masks], name="wide-mixed"
    )
    return dataset, workload


class TestWideShardedPins:
    def test_unsharded_reference_matches_the_pin(self, wide_inputs):
        dataset, workload = wide_inputs
        release = release_marginals(
            dataset, workload, budget=1.0, strategy="F", backend="record", rng=5
        )
        assert fingerprint(release.marginals) == EXPECTED_SHA256

    @pytest.mark.parametrize("shards,workers", [(1, 1), (3, 2), (8, 2)])
    def test_sharded_release_reproduces_the_pin(self, wide_inputs, shards, workers):
        dataset, workload = wide_inputs
        release = release_marginals(
            dataset,
            workload,
            budget=1.0,
            strategy="F",
            shards=shards,
            workers=workers,
            rng=5,
        )
        assert fingerprint(release.marginals) == EXPECTED_SHA256

    def test_engine_store_service_round_trip(self, tmp_path, wide_inputs):
        dataset, workload = wide_inputs
        release = release_marginals(
            dataset, workload, budget=1.0, strategy="F", shards=4, workers=2, rng=5
        )
        assert fingerprint(release.marginals) == EXPECTED_SHA256

        store = ReleaseStore(tmp_path / "store")
        release_id = store.put(release)
        service = QueryService(ReleaseStore(tmp_path / "store", create=False))
        answer = service.query(["a03", "a05"], release_id=release_id)
        assert np.array_equal(answer.values, release.marginal_for(["a03", "a05"]))
        point = service.query([], where={"a00": 1, "a01": 0})
        assert point.values.shape == (1,)
        # The persisted marginals round-trip bit for bit.
        reloaded = store.get(release_id)
        assert fingerprint(reloaded.marginals) == EXPECTED_SHA256
