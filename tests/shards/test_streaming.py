"""Streaming ingestion: batch-order independence and exact one-shot equality.

A :class:`~repro.shards.streaming.StreamingSourceBuilder` fed the same rows
in any batch split and any order must build the exact ``(codes, weights)``
arrays a one-shot :class:`~repro.sources.record.RecordSource` computes —
sorted distinct codes with integer-exact summed weights — while never
buffering more than the distinct codes plus one batch.
"""

from __future__ import annotations

import csv

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.data.loader import iter_csv_batches, load_csv
from repro.domain import Dataset, Schema
from repro.exceptions import DataError
from repro.shards import StreamingSourceBuilder
from repro.sources import RecordSource

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

D = 6

code_lists = st.lists(st.integers(0, (1 << D) - 1), min_size=1, max_size=120)


class TestShuffledBatchesEqualOneShot:
    @SETTINGS
    @given(code_lists, st.integers(1, 9), st.integers(0, 2**16))
    def test_any_batch_split_and_order(self, rows, n_batches, seed):
        codes = np.array(rows, dtype=np.int64)
        reference = RecordSource(codes, dimension=D)
        shuffled = np.random.default_rng(seed).permutation(codes)
        builder = StreamingSourceBuilder(dimension=D, merge_threshold=8)
        for chunk in np.array_split(shuffled, min(n_batches, shuffled.shape[0])):
            builder.add_codes(chunk)
        built_codes, built_weights = builder.arrays()
        assert np.array_equal(built_codes, reference.codes)
        assert np.array_equal(built_weights, reference.weights)
        assert builder.rows_ingested == codes.shape[0]
        source = builder.to_record_source()
        for mask in (0b1, 0b111, (1 << D) - 1):
            assert np.array_equal(source.marginal(mask), reference.marginal(mask))

    @SETTINGS
    @given(code_lists, st.integers(0, 2**16))
    def test_weighted_batches(self, rows, seed):
        codes = np.array(rows, dtype=np.int64)
        rng = np.random.default_rng(seed)
        weights = rng.integers(1, 5, codes.shape[0]).astype(np.float64)
        reference = RecordSource(codes, weights, dimension=D)
        builder = StreamingSourceBuilder(dimension=D, merge_threshold=4)
        order = rng.permutation(codes.shape[0])
        for chunk in np.array_split(order, 5):
            if chunk.size:
                builder.add_codes(codes[chunk], weights[chunk])
        built_codes, built_weights = builder.arrays()
        assert np.array_equal(built_codes, reference.codes)
        assert np.array_equal(built_weights, reference.weights)


class TestBoundedBuffering:
    def test_runs_merge_at_the_threshold(self):
        builder = StreamingSourceBuilder(dimension=16, merge_threshold=100)
        rng = np.random.default_rng(0)
        for _ in range(30):
            builder.add_codes(rng.integers(0, 64, 50))  # few distinct codes
        # 30 batches of <= 50 distinct entries would buffer 1500 entries
        # un-merged; compaction keeps the buffer near the 64 distinct codes.
        assert builder.buffered_entries <= 100 + 64
        assert builder.distinct_records <= 64
        assert builder.rows_ingested == 1500

    def test_records_and_schema_path(self):
        schema = Schema.binary(["a", "b", "c"])
        rows = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=np.int64)
        builder = StreamingSourceBuilder(schema)
        builder.add_records(rows[:2]).add_records(rows[2:])
        reference = Dataset(schema, rows).as_source(backend="record")
        source = builder.to_record_source()
        assert np.array_equal(source.codes, reference.codes)
        assert np.array_equal(source.weights, reference.weights)

    def test_out_of_domain_codes_are_rejected(self):
        builder = StreamingSourceBuilder(dimension=3)
        with pytest.raises(DataError):
            builder.add_codes([8])
        with pytest.raises(DataError):
            builder.add_codes([-1])

    def test_needs_schema_for_records(self):
        with pytest.raises(DataError):
            StreamingSourceBuilder(dimension=3).add_records([[0, 0, 0]])
        with pytest.raises(DataError):
            StreamingSourceBuilder()


class TestChunkedCsv:
    @pytest.fixture
    def csv_file(self, tmp_path):
        rng = np.random.default_rng(4)
        path = tmp_path / "stream.csv"
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["x", "y", "z"])
            for _ in range(157):
                writer.writerow(
                    [
                        "left" if rng.random() < 0.5 else "right",
                        "no" if rng.random() < 0.6 else "yes",
                        "lo" if rng.random() < 0.4 else "hi",
                    ]
                )
        return path

    def test_streamed_csv_equals_load_csv(self, csv_file):
        dataset = load_csv(csv_file)
        reference = dataset.as_source(backend="record")
        builder = StreamingSourceBuilder(dataset.schema)
        builder.add_csv(csv_file, batch_size=20)
        source = builder.to_record_source()
        assert np.array_equal(source.codes, reference.codes)
        assert np.array_equal(source.weights, reference.weights)
        assert builder.rows_ingested == len(dataset)
        assert builder.batches_ingested == 8  # ceil(157 / 20)

    def test_iter_csv_batches_chunking(self, csv_file):
        dataset = load_csv(csv_file)
        batches = list(iter_csv_batches(csv_file, dataset.schema, batch_size=50))
        assert [batch.shape[0] for batch in batches] == [50, 50, 50, 7]
        assert np.array_equal(np.vstack(batches), dataset.records)

    def test_unknown_label_is_a_targeted_error(self, csv_file, tmp_path):
        dataset = load_csv(csv_file)
        bad = tmp_path / "bad.csv"
        bad.write_text("x,y,z\nleft,no,UNSEEN\n")
        with pytest.raises(DataError, match="'z'.*'UNSEEN'"):
            list(iter_csv_batches(bad, dataset.schema))

    def test_column_selection_and_headerless(self, tmp_path):
        path = tmp_path / "nh.csv"
        path.write_text("a,b\n0,1\n1,0\n0,0\n")
        schema = Schema.binary(["b", "a"])
        batches = list(
            iter_csv_batches(path, schema, columns=["b", "a"], batch_size=2)
        )
        assert np.array_equal(
            np.vstack(batches), np.array([[1, 0], [0, 1], [0, 0]])
        )

    def test_permuted_columns_still_yield_schema_order(self, tmp_path):
        """Regression: `columns` in a different order than the schema must
        not swap attribute codes — batches are always in schema order."""
        path = tmp_path / "perm.csv"
        path.write_text("a,b\n0,1\n0,1\n1,1\n")
        schema = Schema.binary(["a", "b"])
        straight = np.vstack(list(iter_csv_batches(path, schema)))
        permuted = np.vstack(
            list(iter_csv_batches(path, schema, columns=["b", "a"]))
        )
        assert np.array_equal(straight, permuted)
        assert np.array_equal(straight, np.array([[0, 1], [0, 1], [1, 1]]))

    def test_columns_must_cover_the_schema(self, tmp_path):
        path = tmp_path / "cov.csv"
        path.write_text("a,b\n0,1\n")
        schema = Schema.binary(["a", "b"])
        with pytest.raises(DataError, match="every schema attribute"):
            list(iter_csv_batches(path, schema, columns=["a", "a"]))
