"""Sharded sources: bitwise identity for any shard count and worker count.

The tentpole guarantee of ``repro.shards``: partitioning the ``(codes,
weights)`` arrays by the stable code hash and summing per-shard marginals in
fixed shard order reproduces the unsharded record-native values **bitwise**
— integer tuple counts sum exactly in float64 in any order — for any shard
count S, any worker count, and both executor kinds.  Seeded releases
therefore reproduce exactly no matter how the measurement was parallelised.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import release_marginals
from repro.domain import Dataset, Schema
from repro.exceptions import DataError
from repro.queries import MarginalQuery, MarginalWorkload
from repro.shards import (
    ShardedRecordSource,
    StreamingSourceBuilder,
    partition_codes,
    resolve_shard_count,
    resolve_worker_count,
    shard_of_codes,
)
from repro.sources import RecordSource

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

D = 5
SHARD_COUNTS = (1, 2, 3, 8)

workload_masks = st.lists(
    st.integers(1, (1 << D) - 1), min_size=1, max_size=6, unique=True
)
record_rows = st.lists(st.integers(0, (1 << D) - 1), min_size=1, max_size=60)
strategy_names = st.sampled_from(["I", "Q", "F", "C"])
seeds = st.integers(0, 2**32 - 1)


def make_inputs(masks, rows):
    schema = Schema.binary([f"a{i}" for i in range(D)])
    workload = MarginalWorkload(
        schema, [MarginalQuery(mask, D) for mask in masks], name="random"
    )
    records = np.array(
        [[(code >> bit) & 1 for bit in range(D)] for code in rows], dtype=np.int64
    )
    return workload, Dataset(schema, records, name="sharded-equivalence")


class TestPartition:
    def test_shard_assignment_is_stable_and_total(self):
        codes = np.arange(5000, dtype=np.int64)
        for shards in SHARD_COUNTS:
            ids = shard_of_codes(codes, shards)
            assert np.array_equal(ids, shard_of_codes(codes, shards))
            assert ids.min() >= 0 and ids.max() < shards
        weights = np.ones(codes.shape[0])
        parts = partition_codes(codes, weights, 4)
        assert sum(part[0].shape[0] for part in parts) == codes.shape[0]
        rejoined = np.sort(np.concatenate([part[0] for part in parts]))
        assert np.array_equal(rejoined, codes)

    def test_partitions_stay_sorted(self):
        codes = np.sort(np.random.default_rng(0).integers(0, 1 << 20, 4000))
        codes = np.unique(codes)
        for part_codes, _ in partition_codes(codes, np.ones(codes.shape[0]), 5):
            assert np.all(np.diff(part_codes) > 0)

    def test_resolution_rules(self, monkeypatch):
        import repro.shards.partition as partition

        monkeypatch.setattr(partition, "_cpu_count", lambda: 4)
        assert resolve_shard_count(10, shards=3) == 3
        assert resolve_shard_count(10) == 1  # below the auto threshold
        assert resolve_shard_count(partition.AUTO_SHARD_RECORDS) == 4
        assert resolve_shard_count(10, workers=4) == 4  # workers imply shards
        assert resolve_worker_count(8) == 4  # capped by cores
        assert resolve_worker_count(2, workers=16) == 2  # capped by shards
        with pytest.raises(DataError):
            resolve_shard_count(10, shards=0)
        monkeypatch.setattr(partition, "_cpu_count", lambda: 1)
        assert resolve_shard_count(partition.AUTO_SHARD_RECORDS) == 1

    def test_auto_sharding_kicks_in_above_the_threshold(self, monkeypatch):
        import repro.shards.partition as partition

        monkeypatch.setattr(partition, "AUTO_SHARD_RECORDS", 50)
        monkeypatch.setattr(partition, "_cpu_count", lambda: 4)
        schema = Schema.binary([f"a{i}" for i in range(D)])
        rng = np.random.default_rng(7)
        records = rng.integers(0, 2, (120, D))
        source = Dataset(schema, records).as_source(backend="record")
        assert isinstance(source, ShardedRecordSource)
        assert source.shards == 4
        small = Dataset(schema, records[:10]).as_source(backend="record")
        assert isinstance(small, RecordSource)


class TestShardedMarginalsMatchUnsharded:
    @SETTINGS
    @given(record_rows, st.sampled_from(SHARD_COUNTS), st.sampled_from([1, 2]))
    def test_source_marginals_bitwise(self, rows, shards, workers):
        codes = np.array(rows, dtype=np.int64)
        base = RecordSource(codes, dimension=D)
        sharded = ShardedRecordSource(
            codes, dimension=D, shards=shards, workers=workers
        )
        assert sharded.distinct_records == base.distinct_records
        assert sharded.total == base.total
        for mask in range(1, 1 << D):
            assert np.array_equal(base.marginal(mask), sharded.marginal(mask))

    @SETTINGS
    @given(workload_masks, record_rows, strategy_names, seeds)
    def test_seeded_releases_bitwise_across_shard_and_worker_counts(
        self, masks, rows, name, seed
    ):
        workload, dataset = make_inputs(masks, rows)
        reference = release_marginals(
            dataset, workload, budget=0.7, strategy=name, backend="record", rng=seed
        )
        for shards, workers in [(1, 1), (2, 2), (3, 1), (8, 2)]:
            sharded = release_marginals(
                dataset,
                workload,
                budget=0.7,
                strategy=name,
                backend="record",
                shards=shards,
                workers=workers,
                rng=seed,
            )
            for left, right in zip(reference.marginals, sharded.marginals):
                assert np.array_equal(left, right, equal_nan=True)

    def test_process_pool_matches_thread_pool(self):
        codes = np.random.default_rng(11).integers(0, 1 << 12, 3000)
        thread = ShardedRecordSource(
            codes, dimension=12, shards=3, workers=2, executor="thread"
        )
        process = ShardedRecordSource(
            codes, dimension=12, shards=3, workers=2, executor="process"
        )
        for mask in (0b1, 0b1111, 0xABC, (1 << 12) - 1):
            assert np.array_equal(thread.marginal(mask), process.marginal(mask))

    def test_fourier_coefficients_bitwise(self):
        codes = np.random.default_rng(3).integers(0, 1 << D, 500)
        base = RecordSource(codes, dimension=D)
        sharded = ShardedRecordSource(codes, dimension=D, shards=4, workers=2)
        masks = [0b11011, 0b111, 0b10001]
        left = base.fourier_coefficients_for_masks(masks)
        right = sharded.fourier_coefficients_for_masks(masks)
        assert left.keys() == right.keys()
        for beta in left:
            assert left[beta] == right[beta]

    def test_dense_vector_matches(self):
        codes = np.random.default_rng(5).integers(0, 1 << 10, 800)
        base = RecordSource(codes, dimension=10)
        sharded = ShardedRecordSource(codes, dimension=10, shards=5, workers=2)
        assert np.array_equal(base.dense_vector(), sharded.dense_vector())

    def test_streaming_builder_build_matches(self):
        codes = np.random.default_rng(9).integers(0, 1 << D, 400)
        builder = StreamingSourceBuilder(dimension=D)
        for chunk in np.array_split(codes, 7):
            builder.add_codes(chunk)
        base = RecordSource(codes, dimension=D)
        for shards in SHARD_COUNTS:
            source = builder.build(shards=shards)
            for mask in (0b1, 0b101, (1 << D) - 1):
                assert np.array_equal(base.marginal(mask), source.marginal(mask))


class TestShardedSourceApi:
    def test_layout_introspection(self):
        codes = np.arange(100, dtype=np.int64)
        source = ShardedRecordSource(codes, dimension=10, shards=4, workers=1)
        assert source.shards == 4
        assert sum(source.shard_sizes) == 100
        assert source.backend == "sharded-record"
        assert "4 shard(s)" in source.describe_layout()
        arrays = source.shard_arrays
        assert len(arrays) == 4
        with pytest.raises(ValueError):
            arrays[0][0][0] = 1  # read-only views

    def test_sharding_requires_record_backend(self):
        schema = Schema.binary([f"a{i}" for i in range(D)])
        dataset = Dataset(schema, np.zeros((4, D), dtype=np.int64))
        with pytest.raises(DataError, match="dense"):
            dataset.as_source(backend="dense", shards=4)

    def test_explicit_shards_force_record_on_small_domains(self):
        schema = Schema.binary([f"a{i}" for i in range(D)])
        dataset = Dataset(schema, np.zeros((4, D), dtype=np.int64))
        source = dataset.as_source(shards=3)
        assert isinstance(source, ShardedRecordSource)
        assert source.shards == 3

    def test_invalid_shard_count(self):
        with pytest.raises(DataError):
            ShardedRecordSource(np.arange(4), dimension=3, shards=0)

    def test_invalid_knobs_fail_even_on_dense_auto_domains(self):
        """Regression: a small domain resolves to the dense backend, which
        never consults the shard knobs — an invalid knob must still be
        rejected instead of silently ignored."""
        schema = Schema.binary([f"a{i}" for i in range(D)])
        dataset = Dataset(schema, np.zeros((4, D), dtype=np.int64))
        with pytest.raises(DataError, match="shard count"):
            dataset.as_source(shards=0)
        with pytest.raises(DataError, match="worker count"):
            dataset.as_source(shards=2, workers=0)
