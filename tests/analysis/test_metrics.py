"""Tests for error metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    average_absolute_error,
    average_relative_error,
    max_absolute_error,
    per_query_absolute_error,
    per_query_relative_error,
    total_squared_error,
)
from repro.exceptions import WorkloadError
from repro.queries import all_k_way


@pytest.fixture
def setup(binary_schema_5, random_counts_5):
    workload = all_k_way(binary_schema_5, 1)
    truth = workload.true_answers(random_counts_5)
    return workload, random_counts_5, truth


class TestAbsoluteError:
    def test_zero_for_exact_answers(self, setup):
        workload, x, truth = setup
        assert average_absolute_error(workload, x, truth) == 0.0
        assert np.allclose(per_query_absolute_error(workload, x, truth), 0.0)

    def test_constant_offset(self, setup):
        workload, x, truth = setup
        shifted = [t + 3.0 for t in truth]
        assert average_absolute_error(workload, x, shifted) == pytest.approx(3.0)
        assert np.allclose(per_query_absolute_error(workload, x, shifted), 3.0)

    def test_accepts_table_vector_and_marginal_truth(self, setup, binary_schema_5):
        from repro.domain import ContingencyTable

        workload, x, truth = setup
        shifted = [t + 1.0 for t in truth]
        table = ContingencyTable(binary_schema_5, x)
        assert average_absolute_error(workload, table, shifted) == pytest.approx(1.0)
        assert average_absolute_error(workload, truth, shifted) == pytest.approx(1.0)

    def test_mismatched_released_count(self, setup):
        workload, x, truth = setup
        with pytest.raises(WorkloadError):
            average_absolute_error(workload, x, truth[:-1])

    def test_mismatched_truth_shape(self, setup):
        workload, x, truth = setup
        broken = list(truth)
        broken[0] = np.zeros(3)
        with pytest.raises(WorkloadError):
            average_absolute_error(workload, broken, truth)


class TestRelativeError:
    def test_scaling_by_mean_true_answer(self, setup):
        workload, x, truth = setup
        shifted = [t + 2.0 for t in truth]
        expected = np.mean([2.0 / t.mean() for t in truth])
        assert average_relative_error(workload, x, shifted) == pytest.approx(expected)

    def test_per_query_relative(self, setup):
        workload, x, truth = setup
        shifted = [t + 5.0 for t in truth]
        per_query = per_query_relative_error(workload, x, shifted)
        assert np.allclose(per_query, [5.0 / t.mean() for t in truth])

    def test_weighted_average_over_cells_not_queries(self, binary_schema_5, random_counts_5):
        """The paper's metric averages per-entry scaled errors, so queries with
        more cells contribute proportionally more."""
        workload = all_k_way(binary_schema_5, 1).union(all_k_way(binary_schema_5, 3))
        truth = workload.true_answers(random_counts_5)
        shifted = [t + 1.0 for t in truth]
        manual = sum(
            (1.0 / t.mean()) * t.size for t in truth
        ) / workload.total_cells
        assert average_relative_error(workload, random_counts_5, shifted) == pytest.approx(manual)


class TestOtherMetrics:
    def test_total_squared_error(self, setup):
        workload, x, truth = setup
        shifted = [t + 2.0 for t in truth]
        assert total_squared_error(workload, x, shifted) == pytest.approx(
            4.0 * workload.total_cells
        )

    def test_max_absolute_error(self, setup):
        workload, x, truth = setup
        shifted = [t.copy() for t in truth]
        shifted[2][1] += 17.0
        assert max_absolute_error(workload, x, shifted) == pytest.approx(17.0)
