"""Tests for the experiment harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import (
    MethodSpec,
    paper_method_suite,
    run_accuracy_experiment,
    run_timing_experiment,
)
from repro.queries import all_k_way, star_workload


@pytest.fixture
def methods():
    return [
        MethodSpec(label="F", strategy="F", non_uniform=False),
        MethodSpec(label="F+", strategy="F", non_uniform=True),
    ]


class TestPaperMethodSuite:
    def test_seven_methods_with_clustering(self):
        labels = [m.label for m in paper_method_suite()]
        assert labels == ["I", "Q", "Q+", "F", "F+", "C", "C+"]

    def test_five_methods_without_clustering(self):
        labels = [m.label for m in paper_method_suite(include_clustering=False)]
        assert labels == ["I", "Q", "Q+", "F", "F+"]

    def test_plus_means_non_uniform(self):
        for method in paper_method_suite():
            assert method.non_uniform == method.label.endswith("+")


class TestAccuracyExperiment:
    def test_point_grid(self, small_dataset, methods):
        workload = all_k_way(small_dataset.schema, 1)
        result = run_accuracy_experiment(
            small_dataset,
            workload,
            methods=methods,
            epsilons=[0.1, 1.0],
            repetitions=2,
            rng=0,
        )
        assert len(result.points) == len(methods) * 2
        assert result.methods() == ["F", "F+"]
        assert result.epsilons() == [0.1, 1.0]
        for point in result.points:
            assert point.repetitions == 2
            assert point.mean_relative_error >= 0.0
            assert point.mean_seconds > 0.0

    def test_error_decreases_with_epsilon(self, small_dataset, methods):
        workload = all_k_way(small_dataset.schema, 2)
        result = run_accuracy_experiment(
            small_dataset,
            workload,
            methods=methods[:1],
            epsilons=[0.05, 5.0],
            repetitions=3,
            rng=1,
        )
        low = result.filter(method="F")[0]
        high = result.filter(method="F")[1]
        assert high.epsilon > low.epsilon
        assert high.mean_relative_error < low.mean_relative_error

    def test_filter(self, small_dataset, methods):
        workload = all_k_way(small_dataset.schema, 1)
        result = run_accuracy_experiment(
            small_dataset, workload, methods=methods, epsilons=[0.5], repetitions=1, rng=0
        )
        assert len(result.filter(method="F+")) == 1
        assert len(result.filter(workload="Q1")) == 2
        assert result.filter(method="nope") == []

    def test_non_uniform_no_worse_on_average(self, small_dataset):
        """F+ should not lose to F by more than noise on a mixed-order workload."""
        workload = star_workload(small_dataset.schema, 1)
        result = run_accuracy_experiment(
            small_dataset,
            workload,
            methods=[
                MethodSpec(label="F", strategy="F", non_uniform=False),
                MethodSpec(label="F+", strategy="F", non_uniform=True),
            ],
            epsilons=[0.3],
            repetitions=8,
            rng=3,
        )
        plain = result.filter(method="F")[0].mean_relative_error
        plus = result.filter(method="F+")[0].mean_relative_error
        assert plus <= plain * 1.25


class TestTimingExperiment:
    def test_points_cover_grid(self, small_dataset, methods):
        workloads = [all_k_way(small_dataset.schema, 1), all_k_way(small_dataset.schema, 2)]
        points = run_timing_experiment(
            small_dataset, workloads, methods=methods, epsilon=1.0, rng=0
        )
        assert len(points) == 4
        assert all(p.total_seconds > 0 for p in points)
        assert {p.workload for p in points} == {"Q1", "Q2"}

    def test_clustering_setup_dominates(self, small_dataset):
        """The clustering strategy's setup (the greedy search) should be slower
        than the Fourier strategy's — the qualitative content of Figure 6."""
        workload = all_k_way(small_dataset.schema, 2)
        points = run_timing_experiment(
            small_dataset,
            [workload],
            methods=[
                MethodSpec(label="F", strategy="F", non_uniform=True),
                MethodSpec(label="C", strategy="C", non_uniform=True),
            ],
            epsilon=1.0,
            rng=0,
        )
        by_label = {p.method: p for p in points}
        assert by_label["C"].setup_seconds > by_label["F"].setup_seconds
