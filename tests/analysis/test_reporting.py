"""Tests for text reporting."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentPoint, ExperimentResult, TimingPoint
from repro.analysis.reporting import (
    format_series_table,
    format_table,
    format_timing_table,
    series_by_method,
)


@pytest.fixture
def experiment():
    result = ExperimentResult(dataset="unit")
    for method in ("F", "F+"):
        for epsilon in (0.1, 1.0):
            result.points.append(
                ExperimentPoint(
                    workload="Q1",
                    method=method,
                    epsilon=epsilon,
                    mean_relative_error=1.0 / epsilon if method == "F" else 0.8 / epsilon,
                    std_relative_error=0.01,
                    repetitions=3,
                    mean_seconds=0.01,
                )
            )
    return result


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bbbb", 22.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert "22.5" in lines[3]

    def test_empty_rows(self):
        text = format_table(["only"], [])
        assert "only" in text

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]], float_format="{:.2f}")
        assert "0.12" in text


class TestSeries:
    def test_series_by_method(self, experiment):
        series = series_by_method(experiment)
        assert set(series) == {"F", "F+"}
        assert [p.epsilon for p in series["F"]] == [0.1, 1.0]

    def test_series_table_contains_all_methods(self, experiment):
        text = format_series_table(experiment, title="Figure X")
        assert text.startswith("Figure X")
        assert "F+" in text
        assert "epsilon" in text
        # one row per epsilon plus header, separator and title
        assert len(text.splitlines()) == 1 + 2 + 2

    def test_series_table_workload_filter(self, experiment):
        assert "0.1" in format_series_table(experiment, workload="Q1")
        missing = format_series_table(experiment, workload="Q9")
        assert "epsilon" in missing  # header still renders


class TestTimingTable:
    def test_layout(self):
        points = [
            TimingPoint(workload="Q1", method="F", setup_seconds=0.1, release_seconds=0.2),
            TimingPoint(workload="Q1", method="C", setup_seconds=1.0, release_seconds=0.5),
            TimingPoint(workload="Q2", method="F", setup_seconds=0.2, release_seconds=0.3),
        ]
        text = format_timing_table(points, title="Figure 6")
        assert text.startswith("Figure 6")
        lines = text.splitlines()
        assert "workload" in lines[1]
        assert any(line.startswith("Q2") for line in lines)
