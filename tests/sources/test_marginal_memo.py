"""The marginal memo and the hoisted batch-projection kernel.

Satellite regression pins: repeated ``marginal(mask)`` requests are served
from a small LRU **bitwise identical** to the uncached computation, cached
arrays are never aliased to callers (the mutate-your-copy contract holds),
and the plane-sharing batch kernel produces exactly the per-mask projected
bincounts.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fourier.index import project_indices
from repro.sources.record import MarginalMemo, RecordSource, projected_marginals

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

D = 7

code_lists = st.lists(st.integers(0, (1 << D) - 1), min_size=1, max_size=80)
masks = st.integers(1, (1 << D) - 1)


class TestMemo:
    @SETTINGS
    @given(code_lists, masks)
    def test_cached_path_is_bitwise_identical_to_uncached(self, rows, mask):
        codes = np.array(rows, dtype=np.int64)
        cached = RecordSource(codes, dimension=D)
        uncached = RecordSource(codes, dimension=D, marginal_cache_size=0)
        first = cached.marginal(mask)
        second = cached.marginal(mask)  # memo hit
        reference = uncached.marginal(mask)
        assert np.array_equal(first, reference)
        assert np.array_equal(second, reference)

    def test_callers_own_their_arrays(self):
        source = RecordSource(np.arange(20, dtype=np.int64), dimension=D)
        first = source.marginal(0b11)
        second = source.marginal(0b11)
        assert first is not second
        first[:] = -123.0  # mutating a returned array must not poison the memo
        assert np.array_equal(source.marginal(0b11), second)

    def test_lru_evicts_oldest(self):
        memo = MarginalMemo(maxsize=2)
        memo.put(1, np.zeros(1))
        memo.put(2, np.zeros(1))
        memo.get(1)  # refresh 1 -> 2 becomes the eviction candidate
        memo.put(3, np.zeros(1))
        assert memo.get(1) is not None
        assert memo.get(2) is None
        assert memo.get(3) is not None

    def test_disabled_memo_stores_nothing(self):
        memo = MarginalMemo(maxsize=0)
        assert not memo.put(1, np.zeros(1))
        assert memo.get(1) is None
        assert not memo.enabled

    def test_cell_budget_bounds_memory(self):
        """Regression: the memo is bounded in cells, not just entries — wide
        batch-root marginals cannot pin unbounded memory on cached sources."""
        memo = MarginalMemo(maxsize=64, max_cells=100)
        assert not memo.put(1, np.zeros(101))  # larger than the whole budget
        assert memo.get(1) is None
        assert memo.put(2, np.zeros(60))
        assert memo.put(3, np.zeros(60))  # pushes total over 100 -> evicts 2
        assert memo.get(2) is None
        assert memo.get(3) is not None
        assert memo.cells == 60

    def test_replacing_an_entry_keeps_the_cell_count_consistent(self):
        memo = MarginalMemo(maxsize=4, max_cells=100)
        memo.put(1, np.zeros(40))
        memo.put(1, np.zeros(10))
        assert memo.cells == 10

    def test_repeats_hit_the_cache(self):
        source = RecordSource(np.arange(50, dtype=np.int64), dimension=D)
        for _ in range(3):
            source.marginal(0b101)
        assert len(source._memo) == 1


class TestProjectedMarginalsKernel:
    @SETTINGS
    @given(
        code_lists,
        st.lists(masks, min_size=1, max_size=6, unique=True),
    )
    def test_plane_sharing_matches_per_mask_projection(self, rows, members):
        codes = np.array(rows, dtype=np.int64)
        weights = np.ones(codes.shape[0], dtype=np.float64)
        root = 0
        for member in members:
            root |= member
        batched = projected_marginals(codes, weights, root, members)
        for member in members:
            compact = project_indices(codes, member)
            reference = np.bincount(
                compact, weights=weights, minlength=1 << bin(member).count("1")
            ).astype(np.float64, copy=False)
            assert np.array_equal(batched[member], reference)

    def test_member_outside_the_root_falls_back_to_direct_projection(self):
        codes = np.arange(30, dtype=np.int64)
        weights = np.ones(30)
        out = projected_marginals(codes, weights, 0b11, [0b11, 0b100])
        reference = np.bincount(
            project_indices(codes, 0b100), weights=weights, minlength=2
        )
        assert np.array_equal(out[0b100], reference)

    def test_batched_source_call_matches_individual_calls(self):
        codes = np.random.default_rng(0).integers(0, 1 << D, 200)
        source = RecordSource(codes, dimension=D)
        fresh = RecordSource(codes, dimension=D, marginal_cache_size=0)
        worklist = [(0b1111, (0b11, 0b1100)), (0b110001, (0b110001,))]
        batch = source.marginals_for_batches(worklist)
        for mask in (0b11, 0b1100, 0b110001):
            assert np.array_equal(batch[mask], fresh.marginal(mask))
