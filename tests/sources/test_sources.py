"""Unit tests for the count-source backends (repro.sources)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.domain import ContingencyTable, Dataset, Schema
from repro.exceptions import DataError, WorkloadError
from repro.queries import all_k_way
from repro.sources import (
    DENSE_LIMIT_BITS,
    DenseCubeSource,
    RecordSource,
    as_count_source,
    ensure_dense_allowed,
    select_backend,
)
from repro.transforms.hadamard import fourier_coefficients_for_masks

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

D = 6
count_vectors = st.lists(st.integers(0, 60), min_size=1 << D, max_size=1 << D)
masks = st.integers(0, (1 << D) - 1)
mask_lists = st.lists(st.integers(0, (1 << D) - 1), min_size=1, max_size=5, unique=True)


def both_sources(counts):
    vector = np.asarray(counts, dtype=np.float64)
    return DenseCubeSource(vector), RecordSource.from_vector(vector)


class TestMarginals:
    @SETTINGS
    @given(count_vectors, masks)
    def test_backends_match_the_contingency_table(self, counts, mask):
        dense, record = both_sources(counts)
        table = ContingencyTable(Schema.binary([f"a{i}" for i in range(D)]), counts)
        expected = table.marginal_by_mask(mask)
        assert np.array_equal(dense.marginal(mask), expected)
        assert np.array_equal(record.marginal(mask), expected)

    @SETTINGS
    @given(count_vectors)
    def test_totals_and_domain_agree(self, counts):
        dense, record = both_sources(counts)
        assert dense.total == record.total == float(sum(counts))
        assert dense.domain_size == record.domain_size == 1 << D

    def test_marginal_returns_fresh_arrays(self):
        dense, record = both_sources(np.arange(1 << D))
        for source in (dense, record):
            first = source.marginal(0b11)
            first[:] = -1.0
            assert not np.array_equal(first, source.marginal(0b11))

    def test_invalid_mask_raises(self):
        dense, record = both_sources(np.ones(1 << D))
        for source in (dense, record):
            with pytest.raises(DataError):
                source.marginal(1 << D)
            with pytest.raises(DataError):
                source.marginal(-1)


class TestFourierCoefficients:
    @SETTINGS
    @given(count_vectors, mask_lists)
    def test_backends_match_the_hadamard_helper(self, counts, requested):
        dense, record = both_sources(counts)
        vector = np.asarray(counts, dtype=np.float64)
        expected = fourier_coefficients_for_masks(vector, requested, D)
        assert dense.fourier_coefficients_for_masks(requested) == expected
        assert record.fourier_coefficients_for_masks(requested) == expected


class TestRecordSource:
    def test_deduplicates_and_sums_weights(self):
        source = RecordSource(np.array([5, 1, 5, 5, 1, 9]), dimension=4)
        assert source.distinct_records == 3
        assert source.codes.tolist() == [1, 5, 9]
        assert source.weights.tolist() == [2.0, 3.0, 1.0]
        assert source.total == 6.0

    def test_explicit_weights_are_aggregated(self):
        source = RecordSource(
            np.array([3, 3, 7]), np.array([1.5, 2.5, 1.0]), dimension=3
        )
        assert source.codes.tolist() == [3, 7]
        assert source.weights.tolist() == [4.0, 1.0]

    def test_from_vector_keeps_only_nonzero_cells(self):
        vector = np.zeros(16)
        vector[[2, 9]] = [4.0, 1.0]
        source = RecordSource.from_vector(vector)
        assert source.distinct_records == 2
        assert np.array_equal(source.dense_vector(), vector)

    def test_from_records_encodes_through_the_schema(self):
        schema = Schema.binary(["a", "b", "c"])
        source = RecordSource.from_records(schema, [[1, 0, 1], [1, 0, 1], [0, 1, 0]])
        assert source.dimension == 3
        assert source.total == 3.0
        assert np.array_equal(
            source.dense_vector(),
            ContingencyTable.from_records(schema, np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]])).counts,
        )

    def test_codes_outside_domain_raise(self):
        with pytest.raises(DataError):
            RecordSource(np.array([8]), dimension=3)

    def test_weight_shape_mismatch_raises(self):
        with pytest.raises(DataError):
            RecordSource(np.array([1, 2]), np.array([1.0]), dimension=3)

    def test_wide_domain_never_allocates_but_guards_dense_paths(self):
        source = RecordSource(np.array([0, 1 << 40, 123]), dimension=62)
        assert source.domain_size == 1 << 62
        assert source.marginal(0b1).tolist() == [2.0, 1.0]
        with pytest.raises(DataError, match="record-native"):
            source.dense_vector()
        with pytest.raises(DataError, match="record-native"):
            source.marginal((1 << 40) - 1)

    def test_empty_source_still_returns_float64(self):
        source = RecordSource(np.array([], dtype=np.int64), dimension=4)
        assert source.marginal(0b1010).dtype == np.float64
        assert source.marginal(0b1010).tolist() == [0.0] * 4
        assert source.dense_vector().dtype == np.float64

    def test_prefers_batch_root_tracks_record_count(self):
        source = RecordSource(np.arange(100), dimension=40)
        assert source.prefers_batch_root(0b111)  # 8 cells << 1024 floor
        assert not source.prefers_batch_root((1 << 20) - 1)  # 1M cells >> 100 records


class TestGuards:
    def test_ensure_dense_allowed_below_limit(self):
        ensure_dense_allowed(DENSE_LIMIT_BITS)  # no raise

    def test_ensure_dense_allowed_above_limit(self):
        with pytest.raises(DataError, match="record-native"):
            ensure_dense_allowed(DENSE_LIMIT_BITS + 1)

    def test_select_backend_auto_switches_at_the_limit(self):
        assert select_backend(DENSE_LIMIT_BITS, "auto") == "dense"
        assert select_backend(DENSE_LIMIT_BITS + 1, "auto") == "record"

    def test_select_backend_dense_above_limit_raises(self):
        with pytest.raises(DataError):
            select_backend(DENSE_LIMIT_BITS + 1, "dense")

    def test_unknown_backend_raises(self):
        with pytest.raises(DataError):
            select_backend(4, "sparse")


class TestDatasetIntegration:
    @pytest.fixture
    def dataset(self):
        schema = Schema.binary(["a", "b", "c", "d"])
        rng = np.random.default_rng(7)
        return Dataset(schema, rng.integers(0, 2, size=(200, 4)), name="unit")

    def test_encoded_counts_cached_and_shared(self, dataset):
        codes, weights = dataset.encoded_counts()
        assert codes is dataset.encoded_counts()[0]
        assert float(weights.sum()) == float(len(dataset))
        source = dataset.as_source(backend="record")
        assert np.array_equal(source.codes, codes)

    def test_dense_cube_matches_record_marginals(self, dataset):
        dense = dataset.as_source(backend="dense")
        record = dataset.as_source(backend="record")
        for mask in range(dataset.schema.domain_size):
            assert np.array_equal(dense.marginal(mask), record.marginal(mask))

    def test_contingency_table_built_from_dedup_cache(self, dataset):
        table = dataset.contingency_table()
        reference = ContingencyTable.from_records(dataset.schema, dataset.records)
        assert np.array_equal(table.counts, reference.counts)

    def test_limit_bits_can_raise_the_dense_limit(self, monkeypatch):
        """An explicit per-call limit must work in both directions: lowering
        it refuses small domains, raising it past the global default allows
        the dense build (simulated with a tiny global limit so the test does
        not allocate a >2**26-cell vector)."""
        schema = Schema.binary(["a", "b", "c", "d"])
        dataset = Dataset(schema, np.zeros((2, 4), dtype=np.int64))
        with pytest.raises(DataError):
            dataset.as_source(backend="dense", limit_bits=2)
        import repro.sources.base as base
        import repro.sources.resolve as resolve

        monkeypatch.setattr(base, "DENSE_LIMIT_BITS", 3)
        monkeypatch.setattr(resolve, "DENSE_LIMIT_BITS", 3)
        source = dataset.as_source(backend="dense", limit_bits=4)
        assert source.backend == "dense"
        # Once the dense table exists, wrapping it allocates nothing: the
        # default-limit call must now succeed instead of raising.
        assert dataset.as_source(backend="dense").backend == "dense"
        with pytest.raises(DataError):
            Dataset(schema, np.zeros((2, 4), dtype=np.int64)).as_source(
                backend="dense"
            )

    def test_wide_dataset_refuses_dense_table(self):
        schema = Schema.binary([f"a{i}" for i in range(DENSE_LIMIT_BITS + 4)])
        records = np.zeros((3, len(schema)), dtype=np.int64)
        records[1, 5] = 1
        wide = Dataset(schema, records)
        with pytest.raises(DataError, match="record-native"):
            wide.contingency_table()
        assert wide.as_source().backend == "record"
        assert wide.marginal(["a5"]).tolist() == [2.0, 1.0]

    def test_table_as_source_round_trip(self, dataset):
        table = dataset.contingency_table()
        assert np.array_equal(
            table.as_source("record").dense_vector(), table.counts
        )
        assert table.as_source().backend == "dense"


class TestResolution:
    @pytest.fixture
    def workload(self):
        return all_k_way(Schema.binary(["a", "b", "c", "d"]), 2)

    def test_all_input_kinds_resolve(self, workload):
        rng = np.random.default_rng(0)
        dataset = Dataset(workload.schema, rng.integers(0, 2, size=(50, 4)))
        table = dataset.contingency_table()
        vector = table.counts
        for data in (dataset, table, vector, dataset.as_source()):
            source = as_count_source(data, workload)
            assert source.dimension == workload.dimension

    def test_explicit_record_backend(self, workload):
        vector = np.zeros(workload.domain_size)
        vector[3] = 5.0
        source = as_count_source(vector, workload, backend="record")
        assert source.backend == "record"
        assert source.total == 5.0

    def test_schema_mismatch_raises(self, workload):
        other = Dataset(Schema.binary(["x", "y"]), np.zeros((1, 2), dtype=np.int64))
        with pytest.raises(WorkloadError):
            as_count_source(other, workload)

    def test_wrong_length_vector_raises(self, workload):
        with pytest.raises(WorkloadError):
            as_count_source(np.zeros(7), workload)

    def test_mismatched_source_dimension_raises(self, workload):
        source = RecordSource(np.array([0]), dimension=3)
        with pytest.raises(WorkloadError):
            as_count_source(source, workload)

    def test_mismatched_source_schema_raises(self, workload):
        """Same total bits, different attribute layout: the bit masks would
        address the wrong attributes, so resolution must reject it."""
        from repro.domain import Attribute

        other = Schema([Attribute("wide", 16)])  # 4 bits, like the workload
        source = RecordSource(np.array([0]), dimension=4, schema=other)
        with pytest.raises(WorkloadError, match="schema"):
            as_count_source(source, workload)
        anonymous = RecordSource(np.array([0]), dimension=4)  # no schema: allowed
        assert as_count_source(anonymous, workload) is anonymous

    def test_forced_dense_wraps_a_materialised_vector_above_the_limit(self, workload):
        """The dense limit guards *new* allocations; wrapping an existing
        vector (or table) with backend='dense' must still work."""
        vector = np.arange(workload.domain_size, dtype=np.float64)
        source = as_count_source(vector, workload, backend="dense", limit_bits=2)
        assert source.backend == "dense"
        table = ContingencyTable(workload.schema, vector)
        assert (
            as_count_source(table, workload, backend="dense", limit_bits=2).backend
            == "dense"
        )
