"""Wide-schema (d = 32) end-to-end coverage on the record-native backend.

The dense pipeline physically cannot serve these domains (a 2**32-cell
float64 vector is 32 GiB); the record-native backend releases, stores and
serves them from a few thousand records.  This is the acceptance scenario of
the record-native refactor: engine → store → QueryService round trip at
d = 32, with the dense backend failing loudly instead of dying on the
allocation.
"""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.engine import MarginalReleaseEngine, release_marginals
from repro.domain import Dataset, Schema
from repro.exceptions import DataError
from repro.queries import MarginalQuery, MarginalWorkload
from repro.serving import QueryService, ReleaseStore
from repro.strategies.marginal import submarginal

D = 32


@pytest.fixture(scope="module")
def wide_schema():
    return Schema.binary([f"a{i:02d}" for i in range(D)])


@pytest.fixture(scope="module")
def wide_dataset(wide_schema):
    rng = np.random.default_rng(2013)
    records = (rng.random((3000, D)) < 0.35).astype(np.int64)
    return Dataset(wide_schema, records, name="wide-32")


@pytest.fixture(scope="module")
def wide_workload(wide_schema):
    masks = [1 << i for i in range(D)]  # every 1-way
    masks += [
        (1 << i) | (1 << j) for i in range(8) for j in range(i + 1, 8)
    ]  # 2-way over the first eight attributes
    masks += [0b111, (1 << 31) | (1 << 15) | 1]  # two spanning 3-way cuboids
    return MarginalWorkload(
        wide_schema, [MarginalQuery(mask, D) for mask in masks], name="wide-mixed"
    )


class TestWideRelease:
    @pytest.mark.parametrize("strategy", ["F", "Q", "C"])
    def test_release_succeeds_and_is_exactly_reproducible(
        self, wide_dataset, wide_workload, strategy
    ):
        first = release_marginals(
            wide_dataset, wide_workload, budget=1.0, strategy=strategy, rng=7
        )
        second = release_marginals(
            wide_dataset, wide_workload, budget=1.0, strategy=strategy, rng=7
        )
        assert len(first.marginals) == len(wide_workload)
        for left, right in zip(first.marginals, second.marginals):
            assert np.array_equal(left, right)

    def test_released_marginals_track_the_exact_counts(
        self, wide_dataset, wide_workload
    ):
        release = release_marginals(
            wide_dataset, wide_workload, budget=50.0, strategy="Q", rng=3
        )
        source = wide_dataset.as_source(backend="record")
        for query, noisy in zip(wide_workload.queries, release.marginals):
            exact = source.marginal(query.mask)
            assert np.abs(noisy - exact).max() < 25.0  # high budget -> tiny noise

    def test_consistency_holds_across_overlapping_cuboids(
        self, wide_dataset, wide_workload
    ):
        release = release_marginals(
            wide_dataset, wide_workload, budget=1.0, strategy="F", rng=11
        )
        assert release.consistent
        by_mask = release.as_dict()
        wide = by_mask[0b111]
        for bit in range(3):
            assert np.allclose(
                submarginal(wide, 0b111, 1 << bit), by_mask[1 << bit], atol=1e-8
            )

    def test_dense_backend_raises_instead_of_allocating(
        self, wide_dataset, wide_workload
    ):
        with pytest.raises(DataError, match="record-native"):
            release_marginals(
                wide_dataset,
                wide_workload,
                budget=1.0,
                strategy="F",
                backend="dense",
                rng=7,
            )

    def test_identity_strategy_raises_a_targeted_error(
        self, wide_dataset, wide_workload
    ):
        with pytest.raises(DataError, match="2\\*\\*32"):
            release_marginals(
                wide_dataset, wide_workload, budget=1.0, strategy="I", rng=7
            )

    def test_explain_reports_the_record_backend(self, wide_workload):
        engine = MarginalReleaseEngine(wide_workload, "F")
        assert engine.resolved_backend == "record"
        explanation = engine.explain(1.0)
        assert "data backend" in explanation
        assert "record" in explanation

    def test_explain_never_raises_for_a_forced_dense_engine(self, wide_workload):
        engine = MarginalReleaseEngine(wide_workload, "F", backend="dense")
        assert engine.resolved_backend == "dense"  # introspection must not throw
        assert "exceeds the dense limit" in engine.explain(1.0)


class TestWideServingRoundTrip:
    def test_engine_store_service_round_trip(
        self, tmp_path, wide_dataset, wide_workload
    ):
        release = release_marginals(
            wide_dataset, wide_workload, budget=1.0, strategy="F", rng=5
        )
        store = ReleaseStore(tmp_path / "store")
        release_id = store.put(release)

        reopened = ReleaseStore(tmp_path / "store", create=False)
        service = QueryService(reopened)
        answer = service.query(["a03", "a05"], release_id=release_id)
        assert answer.values.shape == (4,)
        assert np.isfinite(answer.std_error)
        assert np.array_equal(
            answer.values, release.marginal_for(["a03", "a05"])
        )

        sliced = service.query(["a00"], where={"a01": 1})
        assert sliced.values.shape == (2,)
        total = service.query([])
        assert total.values.shape == (1,)


class TestWideCli:
    @pytest.fixture
    def wide_csv(self, tmp_path):
        rng = np.random.default_rng(5)
        path = tmp_path / "wide.csv"
        names = [f"c{i:02d}" for i in range(D)]
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            for _ in range(400):
                writer.writerow(["yes" if v else "no" for v in rng.integers(0, 2, D)])
        return path

    def test_release_and_query_a_wide_store(self, wide_csv, tmp_path, capsys):
        store = tmp_path / "store"
        code = main(
            [
                "release",
                "--input",
                str(wide_csv),
                "--k",
                "1",
                "--epsilon",
                "2.0",
                "--seed",
                "9",
                "--out",
                str(store),
            ]
        )
        assert code == 0, capsys.readouterr().err
        assert "stored release" in capsys.readouterr().out

        code = main(
            ["query", "--store", str(store), "--attributes", "c07", "--json"]
        )
        assert code == 0, capsys.readouterr().err
        payload = json.loads(capsys.readouterr().out)
        assert payload["attributes"] == ["c07"]
        assert len(payload["cells"]) == 2

    def test_explain_shows_the_backend_choice(self, wide_csv, capsys):
        code = main(
            ["--input", str(wide_csv), "--k", "1", "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "data backend      : record" in out

    def test_forced_dense_backend_fails_loudly(self, wide_csv, capsys):
        code = main(
            ["--input", str(wide_csv), "--k", "1", "--backend", "dense", "--seed", "1"]
        )
        assert code == 2
        assert "record-native" in capsys.readouterr().err
