"""Backend equivalence: seeded releases are bitwise identical across backends.

The exact counts the kernels consume are integers, and float64 addition of
integers below ``2**53`` is exact in any order, so the dense cube reductions
and the record-native projected bincounts produce identical exact values;
the executor's single vectorized noise draw then consumes the RNG stream
identically, making whole seeded releases bitwise identical.  These tests
pin that property across strategies (Fourier / clustering / query /
identity), mixed-order workloads, Laplace and Gaussian noise, and both
budgeting modes — plus sha256 fingerprints of d=16 releases so a silent
divergence in either backend fails loudly.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import release_marginals
from repro.data import synthetic_nltcs
from repro.domain import Dataset, Schema
from repro.mechanisms import PrivacyBudget
from repro.queries import MarginalQuery, MarginalWorkload, all_k_way

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

D = 5
workload_masks = st.lists(st.integers(1, (1 << D) - 1), min_size=1, max_size=6, unique=True)
record_rows = st.lists(
    st.integers(0, (1 << D) - 1), min_size=1, max_size=60
)
epsilons = st.floats(min_value=0.05, max_value=4.0)
strategy_names = st.sampled_from(["I", "Q", "F", "C"])
seeds = st.integers(0, 2**32 - 1)
deltas = st.sampled_from([None, 1e-5, 1e-7])
budgeting = st.booleans()


def make_inputs(masks, rows):
    schema = Schema.binary([f"a{i}" for i in range(D)])
    workload = MarginalWorkload(
        schema, [MarginalQuery(mask, D) for mask in masks], name="random"
    )
    records = np.array(
        [[(code >> bit) & 1 for bit in range(D)] for code in rows], dtype=np.int64
    )
    return workload, Dataset(schema, records, name="equivalence")


def release_pair(workload, dataset, *, strategy, budget, non_uniform, seed):
    return [
        release_marginals(
            dataset,
            workload,
            budget=budget,
            strategy=strategy,
            non_uniform=non_uniform,
            backend=backend,
            rng=seed,
        )
        for backend in ("dense", "record")
    ]


class TestSeededReleasesMatchAcrossBackends:
    @SETTINGS
    @given(workload_masks, record_rows, strategy_names, epsilons, deltas, budgeting, seeds)
    def test_bitwise_identical_marginals(
        self, masks, rows, name, epsilon, delta, non_uniform, seed
    ):
        workload, dataset = make_inputs(masks, rows)
        budget = (
            PrivacyBudget.pure(epsilon)
            if delta is None
            else PrivacyBudget.approximate(epsilon, delta)
        )
        dense, record = release_pair(
            workload,
            dataset,
            strategy=name,
            budget=budget,
            non_uniform=non_uniform,
            seed=seed,
        )
        for left, right in zip(dense.marginals, record.marginals):
            assert np.array_equal(left, right, equal_nan=True)
        assert dense.expected_total_variance == record.expected_total_variance
        assert dense.consistent == record.consistent

    def test_matrix_kernel_expands_the_record_source(self):
        """Explicit-matrix strategies need the dense vector; below the dense
        limit the record source expands it on demand, identically."""
        from repro.core.engine import MarginalReleaseEngine
        from repro.strategies import ExplicitMatrixStrategy

        workload, dataset = make_inputs([0b11, 0b101], [3, 3, 7, 31, 0])
        strategy = ExplicitMatrixStrategy(workload, np.eye(1 << D))
        dense, record = [
            MarginalReleaseEngine(workload, strategy, backend=backend).release(
                dataset, 1.0, rng=13
            )
            for backend in ("dense", "record")
        ]
        for left, right in zip(dense.marginals, record.marginals):
            assert np.array_equal(left, right)

    @SETTINGS
    @given(workload_masks, record_rows, seeds)
    def test_exact_marginals_match_without_noise(self, masks, rows, seed):
        """The raw source answers (no noise, no recovery) coincide exactly."""
        workload, dataset = make_inputs(masks, rows)
        dense = dataset.as_source(backend="dense")
        record = dataset.as_source(backend="record")
        for query in workload.queries:
            assert np.array_equal(
                dense.marginal(query.mask), record.marginal(query.mask)
            )


def fingerprint(marginals) -> str:
    digest = hashlib.sha256()
    for marginal in marginals:
        digest.update(
            np.ascontiguousarray(np.asarray(marginal, dtype=np.float64)).tobytes()
        )
    return digest.hexdigest()


class TestReproductionPins:
    """d=16 NLTCS releases: one pinned fingerprint, two backends.

    The pins were captured on the dense pipeline; the record-native backend
    must reproduce them bit for bit (acceptance criterion of the
    record-native refactor).
    """

    EXPECTED = {
        "F": "a01e8b5110e74163f5fc6028b01509a610da3b38eee1dcaa5a158d1e50b6859b",
        "Q": "5c024282e6ca2496d1277b12fab37faf2af19d5a49238cd90228fcc38d49cfae",
        "C": "06d3920f0ab4e13437190efb259529d7214b2d0e91ab95709d86be60e5d63f96",
        "I": "268a4cb19af108f96f08e91d3026f0afb1505007d60e980973ae8651babefdf7",
    }

    @pytest.fixture(scope="class")
    def nltcs(self):
        data = synthetic_nltcs(n_records=2000, rng=3)
        return data, all_k_way(data.schema, 2)

    @pytest.mark.parametrize("strategy", sorted(EXPECTED))
    @pytest.mark.parametrize("backend", ["dense", "record"])
    def test_seeded_release_reproduces_the_pin(self, nltcs, strategy, backend):
        data, workload = nltcs
        release = release_marginals(
            data, workload, budget=0.8, strategy=strategy, backend=backend, rng=42
        )
        assert fingerprint(release.marginals) == self.EXPECTED[strategy]
