"""End-to-end property-based tests (hypothesis) on the core invariants.

These complement the per-module property tests by driving randomly generated
schemas, workloads and data through larger slices of the pipeline and
checking the invariants the paper's correctness rests on:

* the privacy constraint of every allocation is satisfied with equality on
  the budgeted groups;
* strategy group weights agree with the dense-matrix computation of b_i;
* the consistency projection is an idempotent projection onto a subspace that
  contains the true answers;
* the whole release is invariant under relabelling that does not change the
  count vector (adding records only shifts answers by their exact counts).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.budget.allocation import optimal_allocation, uniform_allocation
from repro.budget.grouping import greedy_grouping, group_specs_from_matrices
from repro.domain import Schema
from repro.mechanisms import PrivacyBudget
from repro.queries import MarginalQuery, MarginalWorkload
from repro.queries.matrix import strategy_matrix_from_masks, workload_matrix
from repro.recovery.consistency import fourier_consistency
from repro.strategies import FourierStrategy, query_strategy

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Random workloads over a 5-bit binary domain: between 1 and 6 distinct masks.
workload_masks = st.lists(st.integers(1, 31), min_size=1, max_size=6, unique=True)
count_vectors = st.lists(st.integers(0, 25), min_size=32, max_size=32)
epsilons = st.floats(min_value=0.05, max_value=4.0)


def make_workload(masks):
    schema = Schema.binary(["a", "b", "c", "d", "e"])
    return MarginalWorkload(
        schema, [MarginalQuery(mask, 5) for mask in masks], name="random"
    )


class TestAllocationProperties:
    @SETTINGS
    @given(workload_masks, epsilons)
    def test_privacy_constraint_tight_for_query_strategy(self, masks, epsilon):
        workload = make_workload(masks)
        strategy = query_strategy(workload)
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(epsilon))
        spent = sum(
            group.constant * eta
            for group, eta in zip(allocation.groups, allocation.group_budgets)
        )
        assert spent == pytest.approx(epsilon, rel=1e-9)
        assert allocation.verify_privacy()

    @SETTINGS
    @given(workload_masks, epsilons)
    def test_fourier_weights_match_dense_computation(self, masks, epsilon):
        """Analytic Fourier group weights equal the dense b_i = sum_j R_ji^2."""
        from repro.queries.matrix import fourier_recovery_matrix

        workload = make_workload(masks)
        strategy = FourierStrategy(workload)
        analytic = {spec.label: spec.weight for spec in strategy.group_specs()}
        recovery = fourier_recovery_matrix(workload)
        dense = (recovery**2).sum(axis=0)
        for position, beta in enumerate(workload.fourier_masks()):
            assert analytic[f"fourier-{beta:#x}"] == pytest.approx(dense[position], rel=1e-9)

    @SETTINGS
    @given(workload_masks, epsilons)
    def test_optimal_matches_dense_grouping_path(self, masks, epsilon):
        """The implicit S = Q group specs give the same optimum as grouping the
        explicit strategy matrix."""
        workload = make_workload(masks)
        strategy = query_strategy(workload)
        budget = PrivacyBudget.pure(epsilon)
        implicit = optimal_allocation(strategy.group_specs(), budget).total_weighted_variance()

        dense = strategy_matrix_from_masks(list(strategy.strategy_masks), 5)
        groups = greedy_grouping(dense)
        specs = group_specs_from_matrices(dense, np.eye(dense.shape[0]), groups)
        explicit = optimal_allocation(specs, budget).total_weighted_variance()
        assert implicit == pytest.approx(explicit, rel=1e-9)

    @SETTINGS
    @given(workload_masks, epsilons)
    def test_uniform_equals_classic_laplace_variance(self, masks, epsilon):
        """Uniform budgeting reproduces the classic Laplace mechanism: total
        variance = 2 * (Delta_1 / eps)^2 * (number of released cells)."""
        workload = make_workload(masks)
        strategy = query_strategy(workload)
        allocation = uniform_allocation(strategy.group_specs(), PrivacyBudget.pure(epsilon))
        q = workload_matrix(workload)
        delta_1 = np.abs(q).sum(axis=0).max()
        expected = 2.0 * (delta_1 / epsilon) ** 2 * workload.total_cells
        assert allocation.total_weighted_variance() == pytest.approx(expected, rel=1e-9)


class TestConsistencyProperties:
    @SETTINGS
    @given(workload_masks, count_vectors)
    def test_truth_is_fixed_point(self, masks, counts):
        workload = make_workload(masks)
        x = np.array(counts, dtype=float)
        truth = workload.true_answers(x)
        projected = fourier_consistency(workload, truth)
        for a, b in zip(projected.marginals, truth):
            assert np.allclose(a, b, atol=1e-6)

    @SETTINGS
    @given(workload_masks, count_vectors, st.integers(0, 10_000))
    def test_projection_is_idempotent(self, masks, counts, seed):
        workload = make_workload(masks)
        x = np.array(counts, dtype=float)
        rng = np.random.default_rng(seed)
        noisy = [
            truth + rng.laplace(scale=3.0, size=truth.shape)
            for truth in workload.true_answers(x)
        ]
        once = fourier_consistency(workload, noisy)
        twice = fourier_consistency(workload, once.marginals)
        for a, b in zip(once.marginals, twice.marginals):
            assert np.allclose(a, b, atol=1e-6)

    @SETTINGS
    @given(workload_masks, count_vectors, st.integers(0, 10_000))
    def test_projection_never_moves_away_from_truth(self, masks, counts, seed):
        workload = make_workload(masks)
        x = np.array(counts, dtype=float)
        truth = np.concatenate(workload.true_answers(x))
        rng = np.random.default_rng(seed)
        noisy = [
            t + rng.laplace(scale=2.0, size=t.shape) for t in workload.true_answers(x)
        ]
        projected = fourier_consistency(workload, noisy)
        before = np.linalg.norm(np.concatenate(noisy) - truth)
        after = np.linalg.norm(np.concatenate(projected.marginals) - truth)
        assert after <= before + 1e-9

    @SETTINGS
    @given(workload_masks, count_vectors, count_vectors)
    def test_projection_commutes_with_adding_exact_data(self, masks, counts_a, counts_b):
        """Adding the exact answers of another data vector to consistent
        marginals keeps them consistent (the subspace is closed under +)."""
        workload = make_workload(masks)
        x_a = np.array(counts_a, dtype=float)
        x_b = np.array(counts_b, dtype=float)
        rng = np.random.default_rng(0)
        noisy = [
            t + rng.laplace(scale=1.0, size=t.shape) for t in workload.true_answers(x_a)
        ]
        projected = fourier_consistency(workload, noisy)
        shifted = [
            p + t for p, t in zip(projected.marginals, workload.true_answers(x_b))
        ]
        reprojected = fourier_consistency(workload, shifted)
        for a, b in zip(reprojected.marginals, shifted):
            assert np.allclose(a, b, atol=1e-6)
