"""Tests of the on-disk release store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.exceptions import ServingError
from repro.queries import all_k_way
from repro.serving.store import ReleaseStore


def assert_same_release(loaded, original):
    assert loaded.workload.masks == original.workload.masks
    assert loaded.workload.schema == original.workload.schema
    assert loaded.strategy_name == original.strategy_name
    assert loaded.allocation == original.allocation
    assert loaded.consistent == original.consistent
    assert loaded.expected_total_variance == pytest.approx(original.expected_total_variance)
    for ours, theirs in zip(original.marginals, loaded.marginals):
        np.testing.assert_allclose(theirs, ours)


class TestPutGet:
    def test_roundtrip(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "store")
        release_id = store.put(release)
        assert release_id == "release-0001"
        assert_same_release(store.get(release_id), release)

    def test_fresh_store_instance_reads_back(self, tmp_path, release):
        root = tmp_path / "store"
        ReleaseStore(root).put(release, release_id="r1")
        # A brand-new store object (fresh index load) sees the release.
        fresh = ReleaseStore(root, create=False)
        assert "r1" in fresh
        assert_same_release(fresh.get("r1"), release)

    def test_ids_increase(self, tmp_path, release):
        store = ReleaseStore(tmp_path)
        assert store.put(release) == "release-0001"
        assert store.put(release) == "release-0002"
        assert store.release_ids() == ["release-0001", "release-0002"]
        assert store.latest_release_id() == "release-0002"

    def test_overwrite_requires_flag(self, tmp_path, release):
        store = ReleaseStore(tmp_path)
        store.put(release, release_id="r1")
        with pytest.raises(ServingError):
            store.put(release, release_id="r1")
        store.put(release, release_id="r1", overwrite=True)
        assert len(store) == 1

    def test_bad_release_id_rejected(self, tmp_path, release):
        store = ReleaseStore(tmp_path)
        with pytest.raises(ServingError):
            store.put(release, release_id="../escape")

    def test_missing_release_errors(self, tmp_path):
        store = ReleaseStore(tmp_path)
        with pytest.raises(ServingError):
            store.get("nope")
        with pytest.raises(ServingError):
            store.metadata("nope")
        with pytest.raises(ServingError):
            store.latest_release_id()

    def test_missing_root_without_create(self, tmp_path):
        with pytest.raises(ServingError):
            ReleaseStore(tmp_path / "absent", create=False)


class TestIndex:
    def test_metadata_summary(self, tmp_path, release):
        store = ReleaseStore(tmp_path)
        release_id = store.put(release)
        meta = store.metadata(release_id)
        assert meta["strategy"] == "F"
        assert meta["epsilon"] == pytest.approx(1.0)
        assert sorted(meta["masks"]) == sorted(release.workload.masks)

    def test_releases_covering(self, tmp_path, schema, counts):
        store = ReleaseStore(tmp_path)
        two_way = release_marginals(counts, all_k_way(schema, 2), budget=1.0, rng=0)
        one_way = release_marginals(counts, all_k_way(schema, 1), budget=1.0, rng=0)
        rid2 = store.put(two_way)
        rid1 = store.put(one_way)
        pair_mask = two_way.workload.masks[0]
        assert store.releases_covering(pair_mask) == [rid2]
        single_mask = one_way.workload.masks[0]
        assert set(store.releases_covering(single_mask)) == {rid1, rid2}

    def test_index_rebuilt_when_deleted(self, tmp_path, release):
        root = tmp_path / "store"
        store = ReleaseStore(root)
        release_id = store.put(release)
        (root / "index.json").unlink()
        rebuilt = ReleaseStore(root)
        assert rebuilt.release_ids() == [release_id]
        assert_same_release(rebuilt.get(release_id), release)

    def test_stale_index_from_second_writer_healed(self, tmp_path, release):
        # Regression: two store instances over the same root must not lose
        # each other's releases through a stale in-memory index.
        root = tmp_path / "store"
        first = ReleaseStore(root)
        second = ReleaseStore(root)
        id_a = first.put(release)
        id_b = second.put(release)  # second reloads the index before writing
        assert id_a != id_b
        fresh = ReleaseStore(root)
        assert fresh.release_ids() == [id_a, id_b]

    def test_corrupt_release_dir_does_not_brick_store(self, tmp_path, release):
        # Regression: a crash mid-put (torn meta.json) must not make every
        # other release unreachable.
        root = tmp_path / "store"
        store = ReleaseStore(root)
        good = store.put(release)
        bad_dir = root / "release-9999"
        bad_dir.mkdir()
        (bad_dir / "meta.json").write_text('{"truncated":')
        with pytest.warns(RuntimeWarning, match="release-9999"):
            reopened = ReleaseStore(root)
        assert reopened.release_ids() == [good]
        assert_same_release(reopened.get(good), release)

    def test_unindexed_release_dir_triggers_rebuild(self, tmp_path, release):
        root = tmp_path / "store"
        store = ReleaseStore(root)
        store.put(release, release_id="r1")
        # Simulate a foreign writer: copy the release dir, leave index stale.
        import shutil

        shutil.copytree(root / "r1", root / "r2")
        fresh = ReleaseStore(root)
        assert set(fresh.release_ids()) == {"r1", "r2"}

    def test_corrupt_index_rebuilt(self, tmp_path, release):
        root = tmp_path / "store"
        store = ReleaseStore(root)
        release_id = store.put(release)
        (root / "index.json").write_text("{not json")
        rebuilt = ReleaseStore(root)
        assert rebuilt.release_ids() == [release_id]

    def test_delete(self, tmp_path, release):
        store = ReleaseStore(tmp_path)
        release_id = store.put(release)
        store.delete(release_id)
        assert len(store) == 0
        assert not (tmp_path / release_id).exists()
        with pytest.raises(ServingError):
            store.delete(release_id)


class TestVersioning:
    def test_future_store_format_rejected(self, tmp_path, release):
        root = tmp_path / "store"
        store = ReleaseStore(root)
        release_id = store.put(release)
        meta_path = root / release_id / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["store_format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ServingError):
            ReleaseStore(root).get(release_id)

    def test_missing_marginals_file_rejected(self, tmp_path, release):
        root = tmp_path / "store"
        store = ReleaseStore(root)
        release_id = store.put(release)
        (root / release_id / "marginals.npz").unlink()
        with pytest.raises(ServingError):
            ReleaseStore(root).get(release_id)
