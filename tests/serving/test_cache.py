"""Tests of the LRU answer cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving.cache import AnswerCache, answer_key
from repro.serving.planner import QueryPlan, ServedAnswer


def make_answer(mask: int) -> ServedAnswer:
    plan = QueryPlan(
        union_mask=mask, source_mask=mask, source_position=0, expansion=1, per_cell_variance=2.0
    )
    values = np.arange(2, dtype=np.float64)
    values.setflags(write=False)
    return ServedAnswer(values=values, query_mask=mask, fixed_mask=0, fixed_bits=0, plan=plan)


class TestAnswerKey:
    def test_distinct_components_distinct_keys(self):
        assert answer_key("r", 1) != answer_key("r", 2)
        assert answer_key("r", 1) != answer_key("s", 1)
        assert answer_key("r", 1, 2, 0) != answer_key("r", 1, 2, 2)
        assert answer_key(None, 1) != answer_key("r", 1)


class TestAnswerCache:
    def test_hit_miss_counters(self):
        cache = AnswerCache(4)
        key = answer_key("r", 1)
        assert cache.get(key) is None
        cache.put(key, make_answer(1))
        assert cache.get(key) is not None
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = AnswerCache(2)
        k1, k2, k3 = (answer_key("r", m) for m in (1, 2, 3))
        cache.put(k1, make_answer(1))
        cache.put(k2, make_answer(2))
        cache.get(k1)  # refresh k1 so k2 becomes the LRU entry
        cache.put(k3, make_answer(3))
        assert k1 in cache
        assert k2 not in cache
        assert k3 in cache
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = AnswerCache(2)
        k1, k2, k3 = (answer_key("r", m) for m in (1, 2, 3))
        cache.put(k1, make_answer(1))
        cache.put(k2, make_answer(2))
        cache.put(k1, make_answer(1))  # refresh, no eviction
        assert cache.stats.evictions == 0
        cache.put(k3, make_answer(3))
        assert k2 not in cache and k1 in cache

    def test_zero_capacity_disables_caching(self):
        cache = AnswerCache(0)
        key = answer_key("r", 1)
        cache.put(key, make_answer(1))
        assert len(cache) == 0
        assert cache.get(key) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ServingError):
            AnswerCache(-1)

    def test_clear_keeps_counters_reset_zeroes_them(self):
        cache = AnswerCache(4)
        key = answer_key("r", 1)
        cache.put(key, make_answer(1))
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        cache.reset_stats()
        assert cache.stats.hits == 0
        assert cache.stats.requests == 0
