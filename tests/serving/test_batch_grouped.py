"""Grouped/concurrent batch serving is bitwise identical to the serial loop.

The grouped ``query_batch`` path re-orders the work aggressively — one
aggregation per (release, source cuboid, union target), one vectorised gather
per predicate shape, concurrent dispatch of independent groups — but every
answer must stay byte-for-byte what the plain per-query loop produces.  The
property is pinned here for random schemas/workloads/predicates/batch orders,
on a release built under retryable injected faults, with a quarantined
cuboid in play, and (sha256-pinned) on a seeded d = 32 store round trip.
"""

from __future__ import annotations

import hashlib
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import release_marginals
from repro.data import synthetic_nltcs
from repro.domain import Dataset, Schema
from repro.queries import MarginalQuery, MarginalWorkload, all_k_way
from repro.resilience import FaultPlan, FaultSpec, fault_injection
from repro.serving.service import QueryRequest, QueryService
from repro.serving.store import ReleaseStore

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

DIMENSION = 5
NAMES = [f"x{i}" for i in range(DIMENSION)]

workload_masks = st.lists(
    st.integers(1, (1 << DIMENSION) - 1), min_size=1, max_size=6, unique=True
)


def _answers_digest(answers, *, with_release_id: bool = True) -> str:
    """sha256 over every answer's value bytes, plan and provenance."""
    digest = hashlib.sha256()
    for answer in answers:
        meta = (
            answer.release_id if with_release_id else None,
            answer.query_mask,
            answer.fixed_mask,
            answer.fixed_bits,
            answer.plan.source_mask,
            answer.plan.source_position,
            answer.plan.expansion,
            answer.plan.degraded,
        )
        digest.update(repr(meta).encode())
        digest.update(np.float64(answer.per_cell_variance).tobytes())
        digest.update(np.ascontiguousarray(answer.values, dtype=np.float64).tobytes())
    return digest.hexdigest()


def _random_requests(names, masks, rng, count):
    """Coverable random requests: marginals, slices and points, mixed."""
    requests = []
    for _ in range(count):
        source = int(masks[int(rng.integers(len(masks)))])
        target = source & int(rng.integers(0, 1 << len(names)))
        fixed_mask = target & int(rng.integers(0, 1 << len(names)))
        query_mask = target & ~fixed_mask
        where = {
            names[bit]: int(rng.integers(0, 2))
            for bit in range(len(names))
            if (fixed_mask >> bit) & 1
        }
        requests.append(QueryRequest(mask=query_mask, where=where or None))
    return requests


def _build_release(masks, seed, epsilon, strategy="F"):
    schema = Schema.binary(NAMES)
    workload = MarginalWorkload(
        schema, [MarginalQuery(mask, DIMENSION) for mask in masks]
    )
    counts = np.random.default_rng(seed).integers(0, 40, size=schema.domain_size)
    return release_marginals(
        counts.astype(np.float64), workload, budget=epsilon, strategy=strategy, rng=seed
    )


class TestGroupedEqualsSerial:
    @SETTINGS
    @given(
        masks=workload_masks,
        seed=st.integers(0, 2**16),
        epsilon=st.floats(min_value=0.05, max_value=4.0),
        strategy=st.sampled_from(["F", "Q"]),
        request_seed=st.integers(0, 2**16),
        count=st.integers(1, 24),
        workers=st.sampled_from([1, 2, 3]),
    )
    def test_bitwise_identical_for_random_workloads_and_batch_orders(
        self, masks, seed, epsilon, strategy, request_seed, count, workers
    ):
        release = _build_release(masks, seed, epsilon, strategy)
        rng = np.random.default_rng(request_seed)
        requests = _random_requests(NAMES, masks, rng, count)
        serial = QueryService(release, cache_size=0).query_batch(
            requests, grouped=False
        )
        grouped = QueryService(
            release, cache_size=0, batch_workers=workers
        ).query_batch(requests)
        assert _answers_digest(grouped) == _answers_digest(serial)
        # The answer cache must not change the served bytes either.
        cached = QueryService(release, batch_workers=workers).query_batch(requests)
        assert _answers_digest(cached) == _answers_digest(serial)

    def test_repeated_batches_reuse_plans_and_routes(self, release):
        service = QueryService(release, cache_size=0, batch_workers=2)
        requests = [["a"], ["b"], {"attributes": ["a"], "where": {"b": 1}}]
        first = service.query_batch(requests)
        second = service.query_batch(requests)
        for left, right in zip(first, second):
            np.testing.assert_array_equal(left.values, right.values)
        stats = service.stats()
        assert stats["plan_cache"]["hits"] >= 2  # second batch re-used the plans
        assert stats["request_index"]["hits"] >= 3  # ... and the resolved routes


class TestDegradedBatch:
    @pytest.fixture
    def v2_store(self, tmp_path, release) -> ReleaseStore:
        store = ReleaseStore(tmp_path / "store", store_format="v2")
        store.put(release, release_id="r1")
        return store

    def test_grouped_equals_serial_with_a_quarantined_cuboid(
        self, tmp_path, v2_store, release
    ):
        # Corrupt the cuboid that serves ["a"]: both paths must quarantine it
        # and fall back to the same wider source, byte for byte.
        position = QueryService(v2_store).query(["a"]).plan.source_position
        target = (
            v2_store.root / "r1" / "marginals" / f"marginal_{position:05d}.npy"
        )
        bad = np.asarray(release.marginals[position], dtype=np.float64).copy()
        bad[0] += 1.0
        np.save(target, bad)

        # No request's union may be {a, b}: the corrupt cuboid is its only
        # cover (the workload is all 2-ways), so that query rightly fails.
        requests = [
            ["a"],
            ["b"],
            {"attributes": ["a"], "where": {"c": 1}},
            ["a", "c"],
            [],
            {"where": {"a": 1}},
            ["a"],
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            serial_service = QueryService(
                ReleaseStore(v2_store.root, create=False), cache_size=0
            )
            serial = serial_service.query_batch(requests, grouped=False)
            grouped_service = QueryService(
                ReleaseStore(v2_store.root, create=False),
                cache_size=0,
                batch_workers=2,
            )
            grouped = grouped_service.query_batch(requests)
        assert _answers_digest(grouped) == _answers_digest(serial)
        assert any(answer.degraded for answer in grouped)
        assert not serial_service.health()["ok"]
        assert not grouped_service.health()["ok"]


class TestFaultedBuildBatch:
    def test_batch_paths_agree_on_a_release_built_under_retryable_faults(
        self, tmp_path
    ):
        dataset = synthetic_nltcs(300, rng=9)
        workload = all_k_way(dataset.schema, 2)

        def build():
            source = dataset.as_source(backend="record", shards=4, workers=2)
            return release_marginals(source, workload, budget=1.0, strategy="Q", rng=21)

        clean = build()
        plan = FaultPlan([FaultSpec("shards.task", hits=(1, 3))])
        with fault_injection(plan) as injector:
            faulted = build()
        assert injector.injected("shards.task") == 2

        store = ReleaseStore(tmp_path / "store", store_format="v2")
        store.put(faulted)
        names = list(dataset.schema.names)
        rng = np.random.default_rng(17)
        requests = _random_requests(
            names, [query.mask for query in workload.queries], rng, 40
        )
        serial = QueryService(
            ReleaseStore(store.root, create=False), cache_size=0
        ).query_batch(requests, grouped=False)
        grouped = QueryService(
            ReleaseStore(store.root, create=False), cache_size=0, batch_workers=2
        ).query_batch(requests)
        assert _answers_digest(grouped) == _answers_digest(serial)
        # The retried build is bitwise identical to a clean one, so serving
        # the faulted release answers exactly like serving the clean release.
        clean_answers = QueryService(clean, cache_size=0).query_batch(requests)
        for left, right in zip(grouped, clean_answers):
            np.testing.assert_array_equal(left.values, right.values)


class TestWideStorePin:
    #: sha256 over the grouped batch answers of the seeded d = 32 round trip
    #: below (values, plans, provenance).  Seeded release + deterministic
    #: serving => this digest is stable; a change means the serving path no
    #: longer reproduces its bytes.
    EXPECTED = "f00abc936ab9115fb24958c416d38045d1a90f89ca449eed653c37f01aca38f8"

    def _requests(self):
        names = [f"a{i:02d}" for i in range(32)]
        requests = [QueryRequest(mask=1 << i) for i in range(0, 32, 3)]
        requests += [
            QueryRequest(mask=(1 << i) | (1 << j))
            for i in range(4)
            for j in range(i + 1, 4)
        ]
        requests += [
            QueryRequest(mask=1 << 0, where={names[1]: 1}),
            QueryRequest(mask=0, where={names[0]: 1, names[1]: 0, names[2]: 1}),
            QueryRequest(mask=0b110, where={names[0]: 0}),
            QueryRequest(mask=1 << 31),
        ]
        return requests

    def test_seeded_d32_round_trip_is_pinned(self, tmp_path):
        schema = Schema.binary([f"a{i:02d}" for i in range(32)])
        rng = np.random.default_rng(2013)
        records = (rng.random((1500, 32)) < 0.35).astype(np.int64)
        dataset = Dataset(schema, records, name="wide-32")
        masks = [1 << i for i in range(32)]
        masks += [(1 << i) | (1 << j) for i in range(6) for j in range(i + 1, 6)]
        masks += [0b111, (1 << 31) | (1 << 15) | 1]
        workload = MarginalWorkload(
            schema, [MarginalQuery(mask, 32) for mask in masks], name="wide-mixed"
        )
        release = release_marginals(
            dataset, workload, budget=1.0, strategy="F", rng=5
        )
        store = ReleaseStore(tmp_path / "store", store_format="v2")
        rid = store.put(release, release_id="wide")
        assert rid == "wide"

        service = QueryService(
            ReleaseStore(store.root, create=False), cache_size=0, batch_workers=2
        )
        requests = self._requests()
        grouped = service.query_batch(requests)
        serial = QueryService(
            ReleaseStore(store.root, create=False), cache_size=0
        ).query_batch(requests, grouped=False)
        digest = _answers_digest(grouped)
        assert digest == _answers_digest(serial)
        assert digest == self.EXPECTED
