"""CLI tests of the release/query subcommands, including a fresh-process
round trip: a release written by one Python process is loaded and queried by
another."""

from __future__ import annotations

import csv
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture
def survey_csv(tmp_path) -> Path:
    rng = np.random.default_rng(42)
    path = tmp_path / "survey.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["smoker", "region", "income"])
        for _ in range(400):
            writer.writerow(
                [
                    "yes" if rng.random() < 0.3 else "no",
                    rng.choice(["north", "south", "east", "west"]),
                    rng.choice(["low", "mid", "high"]),
                ]
            )
    return path


class TestReleaseSubcommand:
    def test_release_into_store(self, survey_csv, tmp_path, capsys):
        store = tmp_path / "store"
        rc = main(
            [
                "release",
                "--input",
                str(survey_csv),
                "--k",
                "2",
                "--epsilon",
                "1.0",
                "--seed",
                "1",
                "--out",
                str(store),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "stored release 'release-0001'" in out
        assert (store / "release-0001" / "meta.json").exists()
        assert (store / "release-0001" / "marginals.npz").exists()

    def test_release_id_and_overwrite(self, survey_csv, tmp_path, capsys):
        store = tmp_path / "store"
        base = [
            "release",
            "--input",
            str(survey_csv),
            "--k",
            "1",
            "--seed",
            "1",
            "--out",
            str(store),
            "--release-id",
            "nightly",
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base) == 2  # duplicate id without --overwrite
        assert "already exists" in capsys.readouterr().err
        assert main(base + ["--overwrite"]) == 0

    def test_release_without_store_still_works(self, survey_csv, capsys):
        rc = main(["release", "--input", str(survey_csv), "--k", "1", "--seed", "0"])
        assert rc == 0
        assert "workload" in capsys.readouterr().out


class TestQuerySubcommand:
    @pytest.fixture
    def store(self, survey_csv, tmp_path) -> Path:
        store = tmp_path / "store"
        assert (
            main(
                [
                    "release",
                    "--input",
                    str(survey_csv),
                    "--k",
                    "2",
                    "--epsilon",
                    "2.0",
                    "--seed",
                    "5",
                    "--out",
                    str(store),
                ]
            )
            == 0
        )
        return store

    def test_marginal_query(self, store, capsys):
        rc = main(["query", "--store", str(store), "--attributes", "region", "income"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "release-0001" in out
        assert "std error" in out
        assert "north" in out

    def test_slice_query_json(self, store, capsys):
        rc = main(
            [
                "query",
                "--store",
                str(store),
                "--attributes",
                "region",
                "--where",
                "smoker=yes",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["attributes"] == ["region"]
        assert payload["where"] == {"smoker": "yes"}
        assert len(payload["cells"]) == 4
        assert payload["per_cell_std_error"] > 0

    def test_point_query(self, store, capsys):
        rc = main(
            [
                "query",
                "--store",
                str(store),
                "--where",
                "smoker=yes",
                "--where",
                "region=north",
                "--json",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert len(payload["cells"]) == 1

    def test_uncovered_query_fails(self, store, capsys):
        rc = main(
            [
                "query",
                "--store",
                str(store),
                "--attributes",
                "smoker",
                "region",
                "income",
            ]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_store_fails(self, tmp_path, capsys):
        rc = main(["query", "--store", str(tmp_path / "absent"), "--attributes", "a"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_where_syntax_fails(self, store, capsys):
        rc = main(["query", "--store", str(store), "--where", "smoker"])
        assert rc == 2
        assert "ATTR=VALUE" in capsys.readouterr().err

    def test_batch_file(self, store, tmp_path, capsys):
        batch = tmp_path / "queries.jsonl"
        batch.write_text(
            "\n".join(
                [
                    "# marginal, slice, point",
                    json.dumps({"attributes": ["region", "income"]}),
                    json.dumps({"attributes": ["region"], "where": {"smoker": "yes"}}),
                    json.dumps({"where": {"smoker": "yes", "region": "north"}}),
                    "",
                ]
            )
        )
        rc = main(["query", "--store", str(store), "--batch", str(batch)])
        captured = capsys.readouterr()
        assert rc == 0
        payloads = [json.loads(line) for line in captured.out.splitlines()]
        assert len(payloads) == 3  # comment and blank lines are skipped
        assert [len(p["cells"]) for p in payloads] == [12, 4, 1]
        assert payloads[1]["where"] == {"smoker": "yes"}
        # Batch answers are bitwise identical to the one-at-a-time CLI path.
        capsys.readouterr()
        assert (
            main(
                [
                    "query", "--store", str(store),
                    "--attributes", "region", "income", "--json",
                ]
            )
            == 0
        )
        single = json.loads(capsys.readouterr().out)
        assert [c["value"] for c in payloads[0]["cells"]] == [
            c["value"] for c in single["cells"]
        ]
        # The timing summary goes to stderr, keeping stdout valid JSONL.
        assert "queries in" in captured.err
        assert "aggregation group(s)" in captured.err

    def test_batch_rejects_inline_query_flags(self, store, tmp_path, capsys):
        batch = tmp_path / "queries.jsonl"
        batch.write_text(json.dumps({"attributes": ["region"]}) + "\n")
        rc = main(
            [
                "query", "--store", str(store),
                "--batch", str(batch), "--attributes", "region",
            ]
        )
        assert rc == 2
        assert "--batch" in capsys.readouterr().err

    def test_batch_bad_line_fails_with_location(self, store, tmp_path, capsys):
        batch = tmp_path / "queries.jsonl"
        batch.write_text('{"attributes": ["region"]}\nnot json\n')
        rc = main(["query", "--store", str(store), "--batch", str(batch)])
        assert rc == 2
        assert f"{batch}:2" in capsys.readouterr().err


class TestFreshProcessRoundTrip:
    """Acceptance: a release written by one process is queried by another."""

    def _run(self, args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=cwd,
            timeout=120,
        )

    def test_release_then_query_in_separate_processes(self, survey_csv, tmp_path):
        store = tmp_path / "store"
        released = self._run(
            [
                "release",
                "--input",
                str(survey_csv),
                "--k",
                "2",
                "--epsilon",
                "1.0",
                "--seed",
                "9",
                "--out",
                str(store),
            ],
            cwd=tmp_path,
        )
        assert released.returncode == 0, released.stderr
        assert "stored release" in released.stdout

        queried = self._run(
            [
                "query",
                "--store",
                str(store),
                "--attributes",
                "region",
                "income",
                "--json",
            ],
            cwd=tmp_path,
        )
        assert queried.returncode == 0, queried.stderr
        payload = json.loads(queried.stdout)
        assert payload["release"] == "release-0001"
        assert len(payload["cells"]) == 12  # 4 regions x 3 income levels
        assert payload["per_cell_std_error"] > 0

        sliced = self._run(
            [
                "query",
                "--store",
                str(store),
                "--attributes",
                "income",
                "--where",
                "region=north",
                "--json",
            ],
            cwd=tmp_path,
        )
        assert sliced.returncode == 0, sliced.stderr
        slice_payload = json.loads(sliced.stdout)
        assert len(slice_payload["cells"]) == 3
        # The slice cells are a subset of the 2-way marginal's cells.
        pair_values = {
            (tuple(cell["labels"]), round(cell["value"], 4))
            for cell in payload["cells"]
        }
        for cell in slice_payload["cells"]:
            assert any(
                labels[-1] == cell["labels"][0] and value == round(cell["value"], 4)
                for labels, value in pair_values
            )
