"""Tests of the cuboid-lattice query planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.exceptions import ServingError
from repro.queries import MarginalQuery, MarginalWorkload, all_k_way
from repro.serving.planner import (
    QueryPlanner,
    released_cell_variances,
    slice_marginal,
)
from repro.strategies.marginal import submarginal
from repro.utils.bits import dominated_by, hamming_weight, iter_submasks


class TestCellVariances:
    def test_matches_allocation_totals(self, release):
        variances = released_cell_variances(release)
        # The per-cell variances, summed back over cells, must reproduce the
        # allocation's total expected variance (unit query weights).
        total = sum(
            variances[query.mask] * query.size for query in release.workload.queries
        )
        assert total == pytest.approx(release.expected_total_variance, rel=1e-9)

    def test_fallback_for_unknown_strategy(self, release):
        from dataclasses import replace

        renamed = replace(release, strategy_name="not-a-strategy")
        variances = released_cell_variances(renamed)
        per_cell = release.expected_total_variance / release.workload.total_cells
        assert all(v == pytest.approx(per_cell) for v in variances.values())


class TestPlan:
    def test_direct_hit_prefers_released_cuboid(self, release):
        mask = release.workload.masks[0]
        plan = release_plan = QueryPlanner(release).plan(mask)
        assert plan.source_mask == mask
        assert plan.expansion == 1
        assert release_plan.per_cell_variance == pytest.approx(
            released_cell_variances(release)[mask]
        )

    def test_min_variance_choice_is_exhaustive(self, release):
        planner = QueryPlanner(release)
        variances = released_cell_variances(release)
        for target in range(release.workload.domain_size):
            covering = [m for m in release.workload.masks if dominated_by(target, m)]
            if not covering:
                with pytest.raises(ServingError):
                    planner.plan(target)
                continue
            plan = planner.plan(target)
            best = min(
                variances[m] * (1 << (hamming_weight(m) - hamming_weight(target)))
                for m in covering
            )
            assert plan.per_cell_variance == pytest.approx(best)
            assert plan.source_mask in covering

    def test_nonuniform_budgeting_can_prefer_unexpected_ancestor(self, schema, counts):
        # Two ancestors of the 1-way marginal over "a": make one of them very
        # heavily weighted so its budget (and thus noise) differs, then check
        # the planner really compares variances instead of taking the first
        # or smallest ancestor.
        workload = MarginalWorkload(
            schema,
            [
                MarginalQuery(0b00011, schema.total_bits),
                MarginalQuery(0b00101, schema.total_bits),
            ],
        )
        release = release_marginals(
            counts, workload, budget=1.0, strategy="Q", rng=1, query_weights=[100.0, 1.0]
        )
        planner = QueryPlanner(release)
        variances = released_cell_variances(release)
        plan = planner.plan(0b00001)
        expected = min(
            variances[m] * 2 for m in (0b00011, 0b00101)
        )
        assert plan.per_cell_variance == pytest.approx(expected)
        # The heavily weighted cuboid got the larger budget, i.e. less noise.
        assert variances[0b00011] < variances[0b00101]
        assert plan.source_mask == 0b00011

    def test_out_of_domain_mask_rejected(self, release):
        planner = QueryPlanner(release)
        with pytest.raises(ServingError):
            planner.plan(1 << 30)
        with pytest.raises(ServingError):
            planner.plan(-1)


class TestAnswer:
    def test_answer_equals_direct_aggregation(self, release):
        planner = QueryPlanner(release)
        for source in release.workload.masks[:4]:
            for target in iter_submasks(source):
                answer = planner.answer(target)
                direct = submarginal(
                    release.marginal_for(answer.plan.source_mask),
                    answer.plan.source_mask,
                    target,
                )
                np.testing.assert_allclose(answer.values, direct)

    def test_consistent_release_serves_same_answer_from_all_ancestors(self, release):
        # The release is consistent, so aggregating ANY covering cuboid gives
        # the same sub-marginal the planner serves.
        planner = QueryPlanner(release)
        target = 0b00010
        answer = planner.answer(target)
        for source in planner.covering_masks(target):
            direct = submarginal(release.marginal_for(source), source, target)
            np.testing.assert_allclose(answer.values, direct, rtol=1e-9, atol=1e-7)

    def test_total_count_query(self, release, counts):
        answer = QueryPlanner(release).answer(0)
        assert answer.values.shape == (1,)
        # Consistent release: the total is the (noisy) grand total.
        assert answer.values[0] == pytest.approx(counts.sum(), rel=0.5)

    def test_answer_values_are_readonly(self, release):
        answer = QueryPlanner(release).answer(release.workload.masks[0])
        with pytest.raises(ValueError):
            answer.values[0] = 0.0

    def test_predicate_slices_parent_marginal(self, release):
        planner = QueryPlanner(release)
        full = planner.answer(0b00011)  # cells over (a, b): index bit0=a, bit1=b
        sliced = planner.answer(0b00001, fixed_mask=0b00010, fixed_bits=0b00010)
        np.testing.assert_allclose(sliced.values, full.values[2:])
        point = planner.answer(0, fixed_mask=0b00011, fixed_bits=0b00011)
        assert point.values.shape == (1,)
        assert point.values[0] == pytest.approx(full.values[3])
        assert point.is_point

    def test_predicate_keeps_per_cell_variance(self, release):
        planner = QueryPlanner(release)
        full = planner.answer(0b00011)
        sliced = planner.answer(0b00001, fixed_mask=0b00010, fixed_bits=0)
        assert sliced.per_cell_variance == pytest.approx(full.per_cell_variance)

    def test_overlapping_predicate_rejected(self, release):
        with pytest.raises(ServingError):
            QueryPlanner(release).answer(0b00011, fixed_mask=0b00001, fixed_bits=0)


class TestSliceMarginal:
    def test_exhaustive_against_bruteforce(self):
        rng = np.random.default_rng(5)
        union = 0b10110  # 3 bits
        values = rng.normal(size=8)
        for fixed_mask in iter_submasks(union, include_zero=False, include_self=True):
            free = union & ~fixed_mask
            for pattern in range(1 << hamming_weight(fixed_mask)):
                # Spread the compact pattern onto the fixed bits' positions.
                fixed_bits = 0
                position = 0
                for bit in range(5):
                    if (fixed_mask >> bit) & 1:
                        if (pattern >> position) & 1:
                            fixed_bits |= 1 << bit
                        position += 1
                result = slice_marginal(values, union, fixed_mask, fixed_bits)
                # Brute force: walk the compact cells of the union marginal.
                expected = []
                u_bits = [b for b in range(5) if (union >> b) & 1]
                for cell in range(8):
                    domain_bits = 0
                    for j, bit in enumerate(u_bits):
                        if (cell >> j) & 1:
                            domain_bits |= 1 << bit
                    if (domain_bits & fixed_mask) == fixed_bits:
                        expected.append(values[cell])
                np.testing.assert_allclose(result, expected)

    def test_bad_inputs_rejected(self):
        values = np.zeros(4)
        with pytest.raises(ServingError):
            slice_marginal(values, 0b0011, 0b0100, 0)  # predicate outside union
        with pytest.raises(ServingError):
            slice_marginal(values, 0b0011, 0b0001, 0b0010)  # value outside mask
