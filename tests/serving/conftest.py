"""Shared fixtures of the serving test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.core.result import ReleaseResult
from repro.domain import Schema
from repro.queries import all_k_way


@pytest.fixture
def schema() -> Schema:
    return Schema.binary(["a", "b", "c", "d", "e"])


@pytest.fixture
def counts(schema) -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.integers(0, 50, size=schema.domain_size).astype(np.float64)


@pytest.fixture
def release(schema, counts) -> ReleaseResult:
    """A consistent Fourier release of all 2-way marginals."""
    workload = all_k_way(schema, 2)
    return release_marginals(counts, workload, budget=1.0, strategy="F", rng=3)
