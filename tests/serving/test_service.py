"""Tests of the QueryService facade (routing, caching, batching)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.exceptions import ServingError
from repro.queries import all_k_way
from repro.serving.service import QueryRequest, QueryService, resolve_predicate
from repro.serving.store import ReleaseStore
from repro.strategies.marginal import submarginal


@pytest.fixture
def store(tmp_path, release) -> ReleaseStore:
    store = ReleaseStore(tmp_path / "store")
    store.put(release, release_id="r1")
    return store


class TestResolvePredicate:
    def test_codes_and_labels(self, schema):
        fixed_mask, fixed_bits = resolve_predicate(schema, {"a": 1, "c": 0})
        assert fixed_mask == 0b00101
        assert fixed_bits == 0b00001
        # String codes work too.
        assert resolve_predicate(schema, {"a": "1"}) == (0b00001, 0b00001)

    def test_bad_value_rejected(self, schema):
        with pytest.raises(ServingError):
            resolve_predicate(schema, {"a": 7})
        with pytest.raises(ServingError):
            resolve_predicate(schema, {"a": "nope"})


class TestSingleQueries:
    def test_in_memory_release(self, release):
        service = QueryService(release)
        answer = service.query(["a", "b"])
        np.testing.assert_allclose(answer.values, release.marginal_for(0b00011))
        assert answer.release_id is None
        assert answer.std_error > 0

    def test_store_backed(self, store, release):
        service = QueryService(store)
        answer = service.query(["a", "b"])
        assert answer.release_id == "r1"
        np.testing.assert_allclose(answer.values, release.marginal_for(0b00011))

    def test_mask_query(self, store, release):
        service = QueryService(store)
        answer = service.query(mask=0b00011)
        np.testing.assert_allclose(answer.values, release.marginal_for(0b00011))

    def test_serving_consumes_no_budget(self, store, release):
        service = QueryService(store)
        before = release.allocation
        for mask in release.workload.masks:
            service.query(mask=mask)
        # The release (and its privacy accounting) is untouched: serving is
        # pure post-processing.
        loaded = service.planner("r1").release
        assert loaded.allocation == before
        assert loaded.budget.epsilon == pytest.approx(1.0)

    def test_cache_hit_flagged(self, store):
        service = QueryService(store)
        first = service.query(["a"])
        second = service.query(["a"])
        assert not first.cached
        assert second.cached
        np.testing.assert_allclose(second.values, first.values)
        assert service.stats()["cache"]["hits"] == 1

    def test_cache_disabled(self, store):
        service = QueryService(store, cache_size=0)
        service.query(["a"])
        assert not service.query(["a"]).cached

    def test_uncovered_query_rejected(self, store):
        service = QueryService(store)
        with pytest.raises(ServingError):
            service.query(["a", "b", "c"])  # only 2-way cuboids were released

    def test_unknown_release_rejected(self, store):
        with pytest.raises(ServingError):
            QueryService(store).query(["a"], release_id="missing")

    def test_single_release_mode_rejects_release_id(self, release):
        with pytest.raises(ServingError):
            QueryService(release).query(["a"], release_id="r1")

    def test_invalid_source_type_rejected(self):
        with pytest.raises(ServingError):
            QueryService(42)  # type: ignore[arg-type]


class TestRouting:
    def test_newest_covering_release_wins(self, tmp_path, schema, counts):
        store = ReleaseStore(tmp_path)
        first = release_marginals(counts, all_k_way(schema, 2), budget=1.0, rng=0)
        second = release_marginals(counts, all_k_way(schema, 1), budget=1.0, rng=1)
        store.put(first, release_id="pairs")
        store.put(second, release_id="singles")
        service = QueryService(store)
        # Covered by both; the newer release ("singles") must serve it.
        assert service.query(["a"]).release_id == "singles"
        # Only the older release covers a 2-way marginal.
        assert service.query(["a", "b"]).release_id == "pairs"
        # Explicit pinning overrides routing.
        assert service.query(["a"], release_id="pairs").release_id == "pairs"


    def test_overwrite_retires_stale_planner_and_answers(self, tmp_path, schema, counts):
        # Regression: overwriting a release id through the same store must
        # not leave the service answering from the old vectors.
        store = ReleaseStore(tmp_path)
        first = release_marginals(counts, all_k_way(schema, 2), budget=1.0, rng=0)
        store.put(first, release_id="rel")
        service = QueryService(store)
        before = service.query(["a"]).values
        second = release_marginals(counts * 10.0, all_k_way(schema, 2), budget=1.0, rng=1)
        store.put(second, release_id="rel", overwrite=True)
        after = service.query(["a"]).values
        assert not np.allclose(after, before)
        np.testing.assert_allclose(
            after, QueryService(store).query(["a"]).values
        )

    def test_routing_does_not_load_non_covering_releases(self, tmp_path, schema, counts, monkeypatch):
        # Regression: rejecting a candidate release must not open its files.
        store = ReleaseStore(tmp_path)
        store.put(release_marginals(counts, all_k_way(schema, 2), budget=1.0, rng=0),
                  release_id="pairs")
        store.put(release_marginals(counts, all_k_way(schema, 1), budget=1.0, rng=1),
                  release_id="singles")
        loaded = []
        original = ReleaseStore.get

        def counting_get(self, release_id):
            loaded.append(release_id)
            return original(self, release_id)

        monkeypatch.setattr(ReleaseStore, "get", counting_get)
        service = QueryService(store)
        # Only the older release covers a 2-way query; the newer candidate
        # must be rejected from the index alone.
        assert service.query(["a", "b"]).release_id == "pairs"
        assert loaded == ["pairs"]

    def test_new_release_retires_fast_path_routing(self, tmp_path, schema, counts):
        # Regression: repeated default-routed queries must not stay pinned to
        # the release that was newest when they were first answered.
        store = ReleaseStore(tmp_path)
        store.put(
            release_marginals(counts, all_k_way(schema, 2), budget=1.0, rng=0),
            release_id="pairs",
        )
        service = QueryService(store)
        assert service.query(["a"]).release_id == "pairs"
        assert service.query(["a"]).release_id == "pairs"  # warm the fast path
        store.put(
            release_marginals(counts, all_k_way(schema, 1), budget=1.0, rng=1),
            release_id="singles",
        )
        assert service.query(["a"]).release_id == "singles"

    def test_request_key_lru_eviction_order(self, store):
        # Regression: the signature memo is an exact LRU now — each insert
        # past capacity evicts exactly the least recently *used* entry, and
        # a lookup refreshes recency.  (Earlier revisions dropped the oldest
        # half wholesale, which made live signatures miss in bursts.)
        service = QueryService(store)
        service._request_keys_cap = 4
        masks = list(store.get("r1").workload.masks)
        for mask in masks[:4]:
            service.query(mask=mask)
        assert len(service._request_keys) == 4
        signatures = list(service._request_keys)
        # Touch the oldest entry: it becomes the most recent.
        service.query(mask=masks[0])
        assert list(service._request_keys) == signatures[1:] + signatures[:1]
        # The next new signature evicts exactly one entry — the LRU (masks[1]).
        service.query(mask=masks[4])
        assert len(service._request_keys) == 4
        assert signatures[1] not in service._request_keys
        for kept in (signatures[0], *signatures[2:]):
            assert kept in service._request_keys
        assert service._request_stats.evictions == 1
        # Retained signatures still serve from the fast path (answer cached).
        hit = service.query(mask=masks[0])
        assert hit.cached
        assert service._request_stats.hits >= 2


class TestBatching:
    def test_batch_matches_single_answers(self, store):
        service = QueryService(store)
        requests = [["a"], ["b"], {"attributes": ["a"], "where": {"b": 1}}, 0b00011]
        batch = QueryService(store).query_batch(requests)
        singles = [
            service.query(["a"]),
            service.query(["b"]),
            service.query(["a"], where={"b": 1}),
            service.query(mask=0b00011),
        ]
        assert len(batch) == 4
        for from_batch, from_single in zip(batch, singles):
            np.testing.assert_allclose(from_batch.values, from_single.values)
            assert from_batch.per_cell_variance == pytest.approx(
                from_single.per_cell_variance
            )

    def test_batch_aggregates_each_source_once(self, store, release, monkeypatch):
        service = QueryService(store)
        planner = service.planner("r1")
        calls = []
        original = type(planner).aggregate

        def counting_aggregate(self, plan):
            calls.append((plan.source_mask, plan.union_mask))
            return original(self, plan)

        monkeypatch.setattr(type(planner), "aggregate", counting_aggregate)
        # Three requests that plan to the same (source, union) pair: the full
        # marginal plus two disjoint slices of it.
        service.query_batch(
            [
                {"attributes": ["a", "b"]},
                {"attributes": ["a"], "where": {"b": 0}},
                {"attributes": ["a"], "where": {"b": 1}},
            ]
        )
        assert len(calls) == len(set(calls))

    def test_batch_uses_cache(self, store):
        service = QueryService(store)
        service.query(["a"])
        batch = service.query_batch([["a"], ["b"]])
        assert batch[0].cached
        assert not batch[1].cached

    def test_batch_request_coercions(self, store, release):
        service = QueryService(store)
        batch = service.query_batch(
            ["a", 0b00011, ("a", "b"), QueryRequest(attributes=("b",))]
        )
        np.testing.assert_allclose(batch[1].values, release.marginal_for(0b00011))
        np.testing.assert_allclose(batch[2].values, release.marginal_for(0b00011))

    def test_stats_counters(self, store):
        service = QueryService(store)
        service.query(["a"])
        service.query_batch([["a"], ["b"]])
        stats = service.stats()
        assert stats["queries"] == 1
        assert stats["batches"] == 1
        assert stats["batched_requests"] == 2
        assert stats["planners"] >= 1
        assert set(stats["cache"]) == {"hits", "misses", "evictions", "hit_rate"}


class TestSlices:
    def test_slice_equals_manual_aggregation(self, store, release):
        service = QueryService(store)
        sliced = service.query(["a"], where={"b": 1})
        # Manual: aggregate the chosen source down to (a, b), keep b = 1.
        source = sliced.plan.source_mask
        union = submarginal(release.marginal_for(source), source, 0b00011)
        np.testing.assert_allclose(sliced.values, union[2:])

    def test_point_query(self, store):
        service = QueryService(store)
        point = service.query([], where={"a": 1, "b": 0})
        assert point.values.shape == (1,)
        assert point.is_point

    def test_predicated_attribute_cannot_be_queried(self, store):
        with pytest.raises(ServingError):
            QueryService(store).query(["a"], where={"a": 1})

    def test_request_cannot_mix_mask_and_attributes(self):
        with pytest.raises(ServingError):
            QueryRequest(attributes=("a",), mask=1)
