"""Degraded-mode serving: digest pinning, quarantine, fallback, sidelining.

Each released cuboid's sha256 is pinned in the store metadata at ``put``
time; the planner re-verifies a vector the first time it aggregates from it.
A digest mismatch quarantines that one cuboid (the query falls back to the
next covering source, with honestly wider error bars); an unloadable release
is sidelined whole and routing falls back to an older one.  Corrupt data is
never served silently: a query only a corrupt cuboid could answer fails.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.exceptions import CorruptMarginalError, ServingError
from repro.serving.service import QueryService
from repro.serving.store import ReleaseStore


@pytest.fixture
def store(tmp_path, release) -> ReleaseStore:
    return ReleaseStore(tmp_path / "store", store_format="v2")


def _corrupt_in_place(root: Path, release_id: str, position: int, release) -> None:
    """Overwrite one stored vector with same-shape different bytes."""
    target = root / release_id / "marginals" / f"marginal_{position:05d}.npy"
    bad = np.asarray(release.marginals[position], dtype=np.float64).copy()
    bad[0] += 1.0
    np.save(target, bad)


def _truncate(path: Path, size: int = 40) -> None:
    with open(path, "r+b") as handle:
        handle.truncate(size)


class TestDigestPinning:
    def test_put_records_one_digest_per_marginal(self, store, release):
        rid = store.put(release)
        digests = store.marginal_digests(rid)
        assert digests is not None
        assert len(digests) == len(release.marginals)
        assert all(len(d) == 64 for d in digests)

    def test_verify_green_on_an_intact_release(self, store, release):
        rid = store.put(release)
        report = store.verify(rid)
        assert report["ok"]
        assert report["verified"] == len(release.marginals)
        assert report["corrupt"] == []

    def test_verify_flags_in_place_corruption(self, store, release):
        rid = store.put(release)
        _corrupt_in_place(store.root, rid, 0, release)
        report = store.verify(rid)
        assert not report["ok"]
        (problem,) = report["corrupt"]
        assert problem["position"] == 0
        assert "integrity" in problem["error"] or "digest" in problem["error"]

    def test_verify_all_rolls_up_every_release(self, store, release):
        good = store.put(release)
        bad = store.put(release)
        _corrupt_in_place(store.root, bad, 1, release)
        report = store.verify_all()
        assert not report["ok"]
        by_id = {entry["release_id"]: entry for entry in report["reports"]}
        assert by_id[good]["ok"]
        assert not by_id[bad]["ok"]


class TestQuarantine:
    def test_corrupt_cuboid_is_quarantined_and_served_from_a_fallback(
        self, store, release
    ):
        rid = store.put(release)
        clean = QueryService(store).query(["a"])
        assert not clean.degraded
        _corrupt_in_place(store.root, rid, clean.plan.source_position, release)

        service = QueryService(store)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = service.query(["a"])
        assert any("quarantined" in str(w.message) for w in caught)
        assert degraded.degraded
        assert degraded.plan.source_mask != clean.plan.source_mask
        # The release is consistent, so the fallback answer matches bitwise.
        np.testing.assert_array_equal(degraded.values, clean.values)
        # Honest accounting: the fallback source is farther up the lattice.
        assert degraded.std_error >= clean.std_error

    def test_health_reflects_the_quarantine(self, store, release):
        rid = store.put(release)
        clean = QueryService(store).query(["a"])
        _corrupt_in_place(store.root, rid, clean.plan.source_position, release)
        service = QueryService(store)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            service.query(["a"])
        health = service.health()
        assert not health["ok"]
        assert health["quarantine_events"] == 1
        assert hex(clean.plan.source_mask) in health["quarantined"][rid]
        assert service.stats()["health"] == health

    def test_batch_path_avoids_the_quarantined_source(self, store, release):
        rid = store.put(release)
        clean = QueryService(store).query(["a"])
        corrupt_mask = clean.plan.source_mask
        _corrupt_in_place(store.root, rid, clean.plan.source_position, release)
        service = QueryService(store)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            answers = service.query_batch([("a",), ("b",), ("c",)])
        assert all(a.plan.source_mask != corrupt_mask for a in answers)

    def test_a_query_only_the_corrupt_cuboid_covers_fails(self, store, release):
        rid = store.put(release)
        clean = QueryService(store).query(["a", "b"])
        # ("a","b") is a maximal 2-way cuboid: nothing else covers it.
        _corrupt_in_place(store.root, rid, clean.plan.source_position, release)
        service = QueryService(store)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(ServingError, match="quarantined"):
                service.query(["a", "b"])

    def test_invalidate_clears_the_quarantine(self, store, release):
        rid = store.put(release)
        clean = QueryService(store).query(["a"])
        _corrupt_in_place(store.root, rid, clean.plan.source_position, release)
        service = QueryService(store)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            service.query(["a"])
        assert not service.health()["ok"]
        service.invalidate(rid)
        assert service.health()["ok"]


class TestTruncation:
    def test_truncated_v2_vector_is_a_targeted_error(self, store, release):
        rid = store.put(release)
        target = store.root / rid / "marginals" / "marginal_00001.npy"
        _truncate(target)
        with pytest.raises(CorruptMarginalError, match="truncated or corrupt") as info:
            store.get(rid)
        assert info.value.mask is not None
        assert info.value.release_id == rid

    def test_truncated_v1_archive_is_a_targeted_error(self, tmp_path, release):
        store = ReleaseStore(tmp_path / "v1store", store_format="v1")
        rid = store.put(release)
        assert store.marginal_digests(rid) is not None
        assert store.verify(rid)["ok"]
        _truncate(store.root / rid / "marginals.npz", size=60)
        with pytest.raises(CorruptMarginalError):
            store.get(rid)
        assert not store.verify(rid)["ok"]


class TestSidelining:
    def test_unloadable_newest_release_falls_back_to_an_older_one(
        self, store, release
    ):
        older = store.put(release)
        newest = store.put(release)
        _truncate(store.root / newest / "marginals" / "marginal_00001.npy")
        service = QueryService(store)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            answer = service.query(["a"])
        assert answer.release_id == older
        assert any("sidelined" in str(w.message) for w in caught)
        health = service.health()
        assert newest in health["degraded_releases"]
        assert not health["ok"]


class TestStatsStoreCli:
    def test_healthy_store_exits_zero(self, store, release, capsys):
        store.put(release)
        rc = main(["stats", "--store", str(store.root)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "health  : OK" in out
        assert "digest-verified" in out

    def test_corrupt_store_exits_one_and_names_the_cuboid(
        self, store, release, capsys
    ):
        rid = store.put(release)
        _corrupt_in_place(store.root, rid, 0, release)
        rc = main(["stats", "--store", str(store.root)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "CORRUPT" in out
        assert "health  : DEGRADED" in out

    def test_json_report_round_trips(self, store, release, capsys):
        store.put(release)
        rc = main(["stats", "--store", str(store.root), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"]
        assert payload["releases"] == 1

    def test_trace_and_store_are_mutually_exclusive(self, store, capsys):
        rc = main(["stats", "trace.json", "--store", str(store.root)])
        err = capsys.readouterr().err
        assert rc == 2
        assert "either a trace file or --store" in err
