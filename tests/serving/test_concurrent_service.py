"""Thread-safety of the service's route memo and the planner's plan cache.

The asyncio serving tier dispatches ``query_batch`` onto a thread pool, so
the request-signature memo (an ``OrderedDict`` LRU) and each planner's
resolved-plan memo are hit from many threads at once.  Both caches are
shrunk here to force constant eviction churn — the pre-lock code would
corrupt the ``OrderedDict`` (``KeyError``/``RuntimeError`` out of
``move_to_end``/``popitem``) or lose entries; the locked code must stay
exception-free and keep answers bitwise identical to a serial run.
"""

from __future__ import annotations

import hashlib
import threading
from typing import List

import pytest

import repro.serving.planner as planner_module
from repro.serving.service import QueryService
from repro.serving.store import ReleaseStore

THREADS = 8
ROUNDS = 30

ATTRS = ["a", "b", "c", "d", "e"]


def _batch_for(index: int) -> List[dict]:
    """A mixed batch whose shape varies per call (keeps the memo churning)."""
    batch = []
    for j in range(6):
        first = ATTRS[(index + j) % 5]
        second = ATTRS[(index + j + 1 + j % 3) % 5]
        if first == second:
            batch.append({"attributes": (first,)})
        else:
            batch.append({"attributes": (first, second)})
        batch.append({"attributes": (first,), "where": {ATTRS[(index + j + 2) % 5]: j % 2}})
    return batch


def _digest(answers) -> str:
    hasher = hashlib.sha256()
    for answer in answers:
        hasher.update(answer.values.tobytes())
        hasher.update(str(answer.query_mask).encode())
        hasher.update(str(answer.plan.source_mask).encode())
    return hasher.hexdigest()


@pytest.fixture
def store(tmp_path, release) -> ReleaseStore:
    store = ReleaseStore(tmp_path / "store", create=True)
    store.put(release)
    return store


class TestConcurrentQueryBatch:
    def test_eight_threads_with_tiny_caches_match_the_serial_answers(
        self, store, monkeypatch
    ):
        # Shrink both memos far below the working set so every round evicts.
        monkeypatch.setattr(planner_module, "PLAN_CACHE_ENTRIES", 4)
        service = QueryService(store, cache_size=2)
        service._request_keys_cap = 8

        serial = QueryService(store)
        expected = {
            index: _digest(serial.query_batch(_batch_for(index)))
            for index in range(THREADS)
        }

        errors: List[BaseException] = []
        mismatches: List[str] = []
        barrier = threading.Barrier(THREADS)

        def worker(index: int) -> None:
            try:
                barrier.wait(timeout=30)
                for _ in range(ROUNDS):
                    answers = service.query_batch(_batch_for(index))
                    if _digest(answers) != expected[index]:
                        mismatches.append(f"thread {index} diverged")
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(index,)) for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        assert errors == []
        assert mismatches == []
        # The memo respected its (tiny) cap despite concurrent inserts.
        assert len(service._request_keys) <= 8
        stats = service.stats()
        assert stats["request_index"]["evictions"] > 0

    def test_concurrent_queries_with_invalidation_churn(self, store):
        """invalidate() clears the memo mid-flight without corrupting it."""
        service = QueryService(store, cache_size=8)
        service._request_keys_cap = 8
        stop = threading.Event()
        errors: List[BaseException] = []

        def querier(index: int) -> None:
            try:
                while not stop.is_set():
                    service.query_batch(_batch_for(index))
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        def invalidator() -> None:
            try:
                while not stop.is_set():
                    service.invalidate()
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=querier, args=(index,)) for index in range(4)
        ] + [threading.Thread(target=invalidator)]
        for thread in threads:
            thread.start()
        timer = threading.Timer(1.5, stop.set)
        timer.start()
        for thread in threads:
            thread.join(timeout=60)
        timer.cancel()
        assert errors == []
