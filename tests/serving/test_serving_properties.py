"""Property-based tests of the serving planner (hypothesis).

For random schemas, workloads and budgets:

* every sub-marginal served by the planner equals the direct aggregation of
  the planner's chosen source cuboid — and, on consistent releases, of *any*
  covering released cuboid;
* the chosen source attains the minimum expected variance among all covering
  released cuboids (summing a cuboid down multiplies its per-cell variance
  by the number of collapsed cells);
* point/slice predicates return exactly the matching cells of the parent
  marginal.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.engine import release_marginals
from repro.domain import Schema
from repro.queries import MarginalQuery, MarginalWorkload
from repro.serving.planner import QueryPlanner, released_cell_variances
from repro.strategies.marginal import submarginal
from repro.utils.bits import dominated_by, hamming_weight, iter_submasks

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

DIMENSION = 5
NAMES = [f"x{i}" for i in range(DIMENSION)]

workload_masks = st.lists(
    st.integers(1, (1 << DIMENSION) - 1), min_size=1, max_size=6, unique=True
)
count_seeds = st.integers(0, 2**16)
epsilons = st.floats(min_value=0.05, max_value=4.0)
strategy_names = st.sampled_from(["F", "Q"])


def build_release(masks, seed, epsilon, strategy, *, weights=None):
    schema = Schema.binary(NAMES)
    workload = MarginalWorkload(
        schema, [MarginalQuery(mask, DIMENSION) for mask in masks]
    )
    counts = np.random.default_rng(seed).integers(0, 40, size=schema.domain_size)
    return release_marginals(
        counts.astype(np.float64),
        workload,
        budget=epsilon,
        strategy=strategy,
        query_weights=weights,
        rng=seed,
    )


@SETTINGS
@given(masks=workload_masks, seed=count_seeds, epsilon=epsilons, strategy=strategy_names)
def test_served_submarginal_equals_direct_aggregation(masks, seed, epsilon, strategy):
    release = build_release(masks, seed, epsilon, strategy)
    planner = QueryPlanner(release)
    for source in masks:
        for target in iter_submasks(source):
            answer = planner.answer(target)
            # The served answer is exactly the aggregation of its chosen source.
            chosen = answer.plan.source_mask
            np.testing.assert_allclose(
                answer.values,
                submarginal(release.marginal_for(chosen), chosen, target),
                rtol=1e-9,
                atol=1e-6,
            )
            # The release is consistent, so aggregating ANY covering released
            # cuboid gives the same answer.
            for other in masks:
                if dominated_by(target, other):
                    np.testing.assert_allclose(
                        answer.values,
                        submarginal(release.marginal_for(other), other, target),
                        rtol=1e-7,
                        atol=1e-5,
                    )


@SETTINGS
@given(
    masks=workload_masks,
    seed=count_seeds,
    epsilon=epsilons,
    strategy=strategy_names,
    weight_seed=st.integers(0, 2**16),
)
def test_planner_choice_minimises_expected_variance(
    masks, seed, epsilon, strategy, weight_seed
):
    # Random positive query weights skew the optimal allocation so different
    # cuboids carry genuinely different noise levels.
    weights = np.random.default_rng(weight_seed).uniform(0.1, 50.0, size=len(masks))
    release = build_release(masks, seed, epsilon, strategy, weights=list(weights))
    planner = QueryPlanner(release)
    variances = released_cell_variances(release)
    for target in range(1 << DIMENSION):
        covering = [m for m in masks if dominated_by(target, m)]
        if not covering:
            assert not planner.covers(target)
            continue
        plan = planner.plan(target)
        candidates = {
            m: variances[m] * (1 << (hamming_weight(m) - hamming_weight(target)))
            for m in covering
        }
        best = min(candidates.values())
        assert plan.source_mask in covering
        assert plan.per_cell_variance == pytest.approx(best)
        assert candidates[plan.source_mask] == pytest.approx(best)


@SETTINGS
@given(masks=workload_masks, seed=count_seeds, epsilon=epsilons)
def test_predicates_select_matching_parent_cells(masks, seed, epsilon):
    release = build_release(masks, seed, epsilon, "F")
    planner = QueryPlanner(release)
    source = max(masks, key=hamming_weight)
    for fixed_mask in iter_submasks(source, include_zero=False):
        free_mask = source & ~fixed_mask
        parent = planner.answer(source)
        sliced = planner.answer(free_mask, fixed_mask=fixed_mask, fixed_bits=fixed_mask)
        # Brute-force the matching parent cells (all fixed bits equal to 1).
        s_bits = [b for b in range(DIMENSION) if (source >> b) & 1]
        expected = []
        for cell in range(parent.values.shape[0]):
            domain_bits = 0
            for j, bit in enumerate(s_bits):
                if (cell >> j) & 1:
                    domain_bits |= 1 << bit
            if (domain_bits & fixed_mask) == fixed_mask:
                expected.append(parent.values[cell])
        np.testing.assert_allclose(sliced.values, expected, rtol=1e-9, atol=1e-6)
        assert sliced.per_cell_variance == pytest.approx(parent.per_cell_variance)
