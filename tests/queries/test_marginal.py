"""Tests for marginal queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.domain import Attribute, Schema
from repro.exceptions import WorkloadError
from repro.queries import MarginalQuery
from repro.utils.bits import hamming_weight


class TestConstruction:
    def test_basic_properties(self):
        query = MarginalQuery(mask=0b0101, dimension=4)
        assert query.order == 2
        assert query.size == 4
        assert query.domain_size == 16

    def test_mask_must_fit_dimension(self):
        with pytest.raises(WorkloadError):
            MarginalQuery(mask=0b10000, dimension=4)

    def test_dimension_must_be_positive(self):
        with pytest.raises(WorkloadError):
            MarginalQuery(mask=0, dimension=0)

    def test_total_and_identity_helpers(self):
        total = MarginalQuery.total_query(5)
        identity = MarginalQuery.identity_query(5)
        assert total.order == 0 and total.size == 1
        assert identity.order == 5 and identity.size == 32

    def test_ordering_and_hash(self):
        a = MarginalQuery(1, 4)
        b = MarginalQuery(1, 4)
        c = MarginalQuery(2, 4)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert sorted([c, a]) == [a, c]


class TestFromAttributes:
    def test_single_attribute(self, mixed_schema):
        query = MarginalQuery.from_attributes(mixed_schema, ["y"])
        assert query.mask == mixed_schema.attribute_mask("y")
        assert query.order == 2

    def test_multiple_attributes(self, mixed_schema):
        query = MarginalQuery.from_attributes(mixed_schema, ["x", "z"])
        assert query.mask == 0b11001
        assert query.attribute_names(mixed_schema) == ("x", "z")

    def test_attribute_names_requires_matching_schema(self, mixed_schema, binary_schema_3):
        query = MarginalQuery.from_attributes(mixed_schema, ["x"])
        with pytest.raises(WorkloadError):
            query.attribute_names(binary_schema_3)


class TestEvaluation:
    def test_evaluate_matches_table(self, paper_example_table):
        query = MarginalQuery.from_attributes(paper_example_table.schema, ["A", "B"])
        via_vector = query.evaluate(paper_example_table.counts)
        via_table = query.evaluate_table(paper_example_table)
        assert np.array_equal(via_vector, via_table)
        assert via_vector.tolist() == [3.0, 0.0, 1.0, 1.0]

    def test_evaluate_table_dimension_mismatch(self, paper_example_table, binary_schema_5):
        query = MarginalQuery(mask=1, dimension=5)
        with pytest.raises(WorkloadError):
            query.evaluate_table(paper_example_table)

    def test_evaluate_preserves_total(self, random_counts_5):
        query = MarginalQuery(mask=0b01010, dimension=5)
        assert query.evaluate(random_counts_5).sum() == pytest.approx(random_counts_5.sum())


class TestFourierSupport:
    def test_support_size(self):
        query = MarginalQuery(mask=0b1011, dimension=4)
        support = query.fourier_support()
        assert len(support) == query.size == 8
        assert len(set(support)) == 8

    def test_support_is_dominated(self):
        query = MarginalQuery(mask=0b0110, dimension=4)
        assert all(beta & query.mask == beta for beta in query.fourier_support())

    def test_support_contains_zero_and_self(self):
        query = MarginalQuery(mask=0b101, dimension=3)
        support = query.fourier_support()
        assert 0 in support and query.mask in support


class TestDominance:
    def test_is_dominated_by(self):
        small = MarginalQuery(0b001, 3)
        big = MarginalQuery(0b011, 3)
        assert small.is_dominated_by(big)
        assert not big.is_dominated_by(small)
        assert big.is_dominated_by(big)

    def test_cross_dimension_comparison_rejected(self):
        with pytest.raises(WorkloadError):
            MarginalQuery(1, 3).is_dominated_by(MarginalQuery(1, 4))
