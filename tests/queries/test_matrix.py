"""Tests for explicit dense matrix constructions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DomainSizeError
from repro.queries import MarginalQuery, MarginalWorkload, all_k_way
from repro.queries.matrix import (
    fourier_basis_matrix,
    fourier_recovery_matrix,
    marginal_operator_matrix,
    strategy_matrix_from_masks,
    workload_matrix,
)
from repro.domain.contingency import marginal_from_vector
from repro.transforms.hadamard import fwht


class TestMarginalOperatorMatrix:
    def test_shape(self):
        matrix = marginal_operator_matrix(0b011, 4)
        assert matrix.shape == (4, 16)

    def test_rows_are_partition_of_columns(self):
        matrix = marginal_operator_matrix(0b101, 4)
        assert np.array_equal(matrix.sum(axis=0), np.ones(16))
        assert set(np.unique(matrix)) <= {0.0, 1.0}

    def test_matches_implicit_operator(self, random_counts_5):
        for mask in [0b00000, 0b00111, 0b10101, 0b11111]:
            matrix = marginal_operator_matrix(mask, 5)
            assert np.allclose(matrix @ random_counts_5, marginal_from_vector(random_counts_5, mask, 5))

    def test_dense_limit_guard(self):
        with pytest.raises(DomainSizeError):
            marginal_operator_matrix(1, 25)


class TestWorkloadMatrix:
    def test_shape_and_stacking(self, paper_example_workload, paper_example_table):
        matrix = workload_matrix(paper_example_workload)
        assert matrix.shape == (6, 8)
        flat = paper_example_workload.true_answers_flat(paper_example_table)
        assert np.allclose(matrix @ paper_example_table.counts, flat)

    def test_figure_1b_structure(self, paper_example_workload):
        """Every column of the Figure 1(b) matrix has exactly two ones:
        one from the A marginal and one from the A,B marginal."""
        matrix = workload_matrix(paper_example_workload)
        assert np.array_equal(matrix.sum(axis=0), np.full(8, 2.0))
        assert np.array_equal(matrix[:2].sum(axis=0), np.ones(8))
        assert np.array_equal(matrix[2:].sum(axis=0), np.ones(8))


class TestFourierBasisMatrix:
    def test_orthonormal(self):
        matrix = fourier_basis_matrix(4)
        assert np.allclose(matrix @ matrix.T, np.eye(16))

    def test_symmetric(self):
        matrix = fourier_basis_matrix(3)
        assert np.allclose(matrix, matrix.T)

    def test_entry_magnitudes(self):
        d = 3
        matrix = fourier_basis_matrix(d)
        assert np.allclose(np.abs(matrix), 2.0 ** (-d / 2.0))

    def test_matches_fwht(self, random_counts_5):
        matrix = fourier_basis_matrix(5)
        assert np.allclose(matrix @ random_counts_5, fwht(random_counts_5))


class TestFourierRecoveryMatrix:
    def test_shape(self, binary_schema_5):
        workload = all_k_way(binary_schema_5, 2)
        recovery = fourier_recovery_matrix(workload)
        assert recovery.shape == (workload.total_cells, len(workload.fourier_masks()))

    def test_exact_reconstruction_from_exact_coefficients(self, binary_schema_5, random_counts_5):
        workload = all_k_way(binary_schema_5, 2)
        recovery = fourier_recovery_matrix(workload)
        coefficients = fwht(random_counts_5)
        ordered = np.array([coefficients[mask] for mask in workload.fourier_masks()])
        reconstructed = recovery @ ordered
        assert np.allclose(reconstructed, workload.true_answers_flat(random_counts_5))

    def test_hadamard_block_structure(self, paper_example_workload):
        """Each query block of R is (a scaled permutation of) a Hadamard matrix,
        so R^T R restricted to a block is a multiple of the identity."""
        recovery = fourier_recovery_matrix(paper_example_workload)
        d = paper_example_workload.dimension
        block = recovery[2:, :]  # the A,B marginal rows
        gram = block.T @ block
        # Columns for coefficients dominated by AB are orthogonal with equal norm.
        diagonal = np.diag(gram)
        nonzero = diagonal > 0
        assert np.allclose(gram[np.ix_(nonzero, nonzero)], np.diag(diagonal[nonzero]))
        assert np.allclose(diagonal[nonzero], 2.0 ** (d - 2))


class TestStrategyMatrixFromMasks:
    def test_stacks_marginal_operators(self, random_counts_5):
        masks = [0b00011, 0b11000]
        matrix = strategy_matrix_from_masks(masks, 5)
        assert matrix.shape == (4 + 4, 32)
        expected = np.concatenate(
            [marginal_from_vector(random_counts_5, m, 5) for m in masks]
        )
        assert np.allclose(matrix @ random_counts_5, expected)
