"""Tests for marginal workloads and the paper's workload families."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.domain import Attribute, Schema
from repro.exceptions import WorkloadError
from repro.queries import (
    MarginalQuery,
    MarginalWorkload,
    all_k_way,
    anchored_workload,
    datacube_workload,
    star_workload,
)
from repro.queries.workload import paper_workloads
from repro.utils.bits import dominated_by


class TestWorkloadContainer:
    def test_duplicates_collapsed(self, binary_schema_3):
        query = MarginalQuery.from_attributes(binary_schema_3, ["A"])
        workload = MarginalWorkload(binary_schema_3, [query, query])
        assert len(workload) == 1

    def test_empty_rejected(self, binary_schema_3):
        with pytest.raises(WorkloadError):
            MarginalWorkload(binary_schema_3, [])

    def test_dimension_mismatch_rejected(self, binary_schema_3):
        with pytest.raises(WorkloadError):
            MarginalWorkload(binary_schema_3, [MarginalQuery(1, 5)])

    def test_total_cells(self, paper_example_workload):
        assert paper_example_workload.total_cells == 2 + 4

    def test_masks_and_orders(self, paper_example_workload):
        assert paper_example_workload.masks == (0b001, 0b011)
        assert paper_example_workload.orders == (1, 2)
        assert paper_example_workload.max_order == 2

    def test_indexing_and_iteration(self, paper_example_workload):
        assert paper_example_workload[0].mask == 0b001
        assert [q.mask for q in paper_example_workload] == [0b001, 0b011]

    def test_queries_by_mask(self, paper_example_workload):
        lookup = paper_example_workload.queries_by_mask()
        assert set(lookup) == {0b001, 0b011}


class TestFourierMasks:
    def test_example_support(self, paper_example_workload):
        # Submasks of {A} and {A, B}: 0, A, B, AB.
        assert set(paper_example_workload.fourier_masks()) == {0b000, 0b001, 0b010, 0b011}

    def test_all_k_way_support_size(self, binary_schema_5):
        workload = all_k_way(binary_schema_5, 2)
        expected = sum(math.comb(5, i) for i in range(3))
        assert len(workload.fourier_masks()) == expected

    def test_support_closed_under_domination(self, workload_2way_5):
        support = set(workload_2way_5.fourier_masks())
        for beta in support:
            for sub in range(beta + 1):
                if dominated_by(sub, beta):
                    assert sub in support


class TestEvaluation:
    def test_true_answers_and_flat_round_trip(self, paper_example_table, paper_example_workload):
        answers = paper_example_workload.true_answers(paper_example_table)
        flat = paper_example_workload.true_answers_flat(paper_example_table)
        assert np.array_equal(np.concatenate(answers), flat)
        split = paper_example_workload.split_flat(flat)
        for original, recovered in zip(answers, split):
            assert np.array_equal(original, recovered)

    def test_true_answers_accepts_raw_vector(self, paper_example_table, paper_example_workload):
        by_table = paper_example_workload.true_answers(paper_example_table)
        by_vector = paper_example_workload.true_answers(paper_example_table.counts)
        for a, b in zip(by_table, by_vector):
            assert np.array_equal(a, b)

    def test_split_flat_rejects_wrong_length(self, paper_example_workload):
        with pytest.raises(WorkloadError):
            paper_example_workload.split_flat(np.zeros(5))


class TestComposition:
    def test_union_collapses_duplicates(self, binary_schema_5):
        q1 = all_k_way(binary_schema_5, 1)
        q2 = all_k_way(binary_schema_5, 2)
        union = q1.union(q2, name="both")
        assert len(union) == len(q1) + len(q2)
        again = union.union(q1)
        assert len(again) == len(union)

    def test_union_requires_same_schema(self, binary_schema_5, binary_schema_3):
        with pytest.raises(WorkloadError):
            all_k_way(binary_schema_5, 1).union(all_k_way(binary_schema_3, 1))

    def test_restrict_to_orders(self, binary_schema_5):
        workload = star_workload(binary_schema_5, 1)
        ones = workload.restrict_to_orders([1])
        assert all(q.order == 1 for q in ones)
        with pytest.raises(WorkloadError):
            workload.restrict_to_orders([4])


class TestAllKWay:
    def test_count_matches_binomial(self, binary_schema_5):
        for k in range(1, 6):
            assert len(all_k_way(binary_schema_5, k)) == math.comb(5, k)

    def test_orders_are_uniform_for_binary_schema(self, binary_schema_5):
        workload = all_k_way(binary_schema_5, 3)
        assert set(workload.orders) == {3}

    def test_mixed_cardinality_orders_use_bit_blocks(self, mixed_schema):
        workload = all_k_way(mixed_schema, 1)
        # x is 1 bit, y and z are 2 bits each.
        assert sorted(workload.orders) == [1, 2, 2]

    def test_invalid_k_rejected(self, binary_schema_5):
        with pytest.raises(WorkloadError):
            all_k_way(binary_schema_5, 0)
        with pytest.raises(WorkloadError):
            all_k_way(binary_schema_5, 6)

    def test_default_name(self, binary_schema_5):
        assert all_k_way(binary_schema_5, 2).name == "Q2"


class TestStarWorkload:
    def test_size_is_k_plus_half_of_k_plus_one(self, binary_schema_5):
        workload = star_workload(binary_schema_5, 1)
        expected_extra = round(0.5 * math.comb(5, 2))
        assert len(workload) == math.comb(5, 1) + expected_extra

    def test_custom_fraction(self, binary_schema_5):
        workload = star_workload(binary_schema_5, 1, fraction=1.0)
        assert len(workload) == math.comb(5, 1) + math.comb(5, 2)

    def test_random_selection_is_seeded(self, binary_schema_5):
        a = star_workload(binary_schema_5, 1, rng=3).masks
        b = star_workload(binary_schema_5, 1, rng=3).masks
        c = star_workload(binary_schema_5, 1, rng=4).masks
        assert a == b
        assert a != c or len(set([a, c])) == 1  # different seeds usually differ

    def test_invalid_parameters(self, binary_schema_5):
        with pytest.raises(WorkloadError):
            star_workload(binary_schema_5, 5)
        with pytest.raises(WorkloadError):
            star_workload(binary_schema_5, 1, fraction=1.5)

    def test_contains_all_k_way(self, binary_schema_5):
        base = set(all_k_way(binary_schema_5, 2).masks)
        star = set(star_workload(binary_schema_5, 2).masks)
        assert base <= star


class TestAnchoredWorkload:
    def test_extra_marginals_contain_anchor(self, binary_schema_5):
        workload = anchored_workload(binary_schema_5, 1, "c")
        anchor_mask = binary_schema_5.attribute_mask("c")
        higher = [q for q in workload if q.order == 2]
        assert len(higher) == 4
        assert all(q.mask & anchor_mask for q in higher)

    def test_size(self, binary_schema_5):
        workload = anchored_workload(binary_schema_5, 2, "a")
        assert len(workload) == math.comb(5, 2) + math.comb(4, 2)

    def test_invalid_anchor_rejected(self, binary_schema_5):
        with pytest.raises(Exception):
            anchored_workload(binary_schema_5, 1, "nope")


class TestDatacubeWorkload:
    def test_full_datacube_size(self, binary_schema_3):
        workload = datacube_workload(binary_schema_3)
        assert len(workload) == 2**3 - 1  # all non-empty attribute subsets

    def test_with_total(self, binary_schema_3):
        workload = datacube_workload(binary_schema_3, include_total=True)
        assert len(workload) == 2**3
        assert 0 in workload.masks

    def test_truncated(self, binary_schema_5):
        workload = datacube_workload(binary_schema_5, max_order=2)
        assert len(workload) == math.comb(5, 1) + math.comb(5, 2)

    def test_invalid_order(self, binary_schema_5):
        with pytest.raises(WorkloadError):
            datacube_workload(binary_schema_5, max_order=0)


class TestPaperWorkloads:
    def test_six_workloads(self, binary_schema_5):
        workloads = paper_workloads(binary_schema_5)
        assert set(workloads) == {"Q1", "Q1*", "Q1a", "Q2", "Q2*", "Q2a"}

    def test_names_match_keys(self, binary_schema_5):
        for key, workload in paper_workloads(binary_schema_5).items():
            assert workload.name == key
