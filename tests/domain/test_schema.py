"""Tests for schemas and the binary encoding of records."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.domain.attribute import Attribute
from repro.domain.schema import Schema
from repro.exceptions import DomainSizeError, SchemaError


class TestConstruction:
    def test_basic_properties(self, mixed_schema):
        assert len(mixed_schema) == 3
        assert mixed_schema.names == ("x", "y", "z")
        assert mixed_schema.total_bits == 5
        assert mixed_schema.domain_size == 32
        assert mixed_schema.raw_domain_size == 2 * 3 * 4

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a", 2), Attribute("a", 3)])

    def test_binary_constructor(self):
        schema = Schema.binary(["p", "q", "r"])
        assert schema.total_bits == 3
        assert schema.is_binary

    def test_from_cardinalities(self):
        schema = Schema.from_cardinalities({"a": 4, "b": 2})
        assert schema.total_bits == 3
        assert schema.attribute("a").cardinality == 4

    def test_equality_and_hash(self):
        a = Schema.binary(["x", "y"])
        b = Schema.binary(["x", "y"])
        c = Schema.binary(["x", "z"])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestLookups:
    def test_position_by_name_and_index(self, mixed_schema):
        assert mixed_schema.position("y") == 1
        assert mixed_schema.position(2) == 2
        assert mixed_schema.attribute("z").cardinality == 4

    def test_unknown_name_rejected(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.position("missing")

    def test_out_of_range_index_rejected(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.position(7)

    def test_attribute_object_lookup(self, mixed_schema):
        attr = mixed_schema.attributes[1]
        assert mixed_schema.position(attr) == 1


class TestBitLayout:
    def test_blocks_are_contiguous(self, mixed_schema):
        assert mixed_schema.bit_block("x") == (0, 1)
        assert mixed_schema.bit_block("y") == (1, 2)
        assert mixed_schema.bit_block("z") == (3, 2)

    def test_attribute_masks(self, mixed_schema):
        assert mixed_schema.attribute_mask("x") == 0b00001
        assert mixed_schema.attribute_mask("y") == 0b00110
        assert mixed_schema.attribute_mask("z") == 0b11000

    def test_mask_of_union(self, mixed_schema):
        assert mixed_schema.mask_of(["x", "z"]) == 0b11001
        assert mixed_schema.full_mask == 0b11111

    def test_attributes_of_mask(self, mixed_schema):
        assert mixed_schema.attributes_of_mask(0b00110) == ("y",)
        assert mixed_schema.attributes_of_mask(0b11001) == ("x", "z")
        assert mixed_schema.attributes_of_mask(0) == ()

    def test_attributes_of_mask_out_of_range(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.attributes_of_mask(1 << 10)

    def test_is_attribute_aligned(self, mixed_schema):
        assert mixed_schema.is_attribute_aligned(0b00110)
        assert mixed_schema.is_attribute_aligned(0b11001)
        assert not mixed_schema.is_attribute_aligned(0b00010)  # half of y's block


class TestRecordEncoding:
    def test_encode_decode_round_trip(self, mixed_schema):
        for record in [(0, 0, 0), (1, 2, 3), (0, 1, 2)]:
            assert mixed_schema.decode_index(mixed_schema.encode_record(record)) == record

    def test_encode_example(self):
        schema = Schema([Attribute("A", 2), Attribute("B", 3)])
        # A occupies bit 0, B occupies bits 1-2: record (1, 2) -> 1 + (2 << 1) = 5.
        assert schema.encode_record([1, 2]) == 5

    def test_encode_rejects_wrong_length(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.encode_record([0, 0])

    def test_encode_rejects_out_of_domain(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.encode_record([0, 3, 0])

    def test_decode_rejects_padding_cell(self):
        schema = Schema([Attribute("y", 3)])
        with pytest.raises(SchemaError):
            schema.decode_index(3)  # code 3 is a padding cell for cardinality 3

    def test_decode_rejects_out_of_range(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.decode_index(mixed_schema.domain_size)

    def test_encode_records_matches_scalar(self, mixed_schema):
        records = np.array([[0, 0, 0], [1, 2, 3], [1, 1, 1]])
        vectorised = mixed_schema.encode_records(records)
        scalar = [mixed_schema.encode_record(row) for row in records]
        assert vectorised.tolist() == scalar

    def test_encode_records_rejects_bad_shape(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.encode_records(np.zeros((4, 2), dtype=int))

    def test_encode_records_rejects_out_of_domain(self, mixed_schema):
        with pytest.raises(SchemaError):
            mixed_schema.encode_records(np.array([[0, 5, 0]]))

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 2), st.integers(0, 3)), min_size=1, max_size=30))
    def test_encoding_is_injective(self, records):
        schema = Schema([Attribute("x", 2), Attribute("y", 3), Attribute("z", 4)])
        encoded = [schema.encode_record(r) for r in records]
        decoded = [schema.decode_index(e) for e in encoded]
        assert decoded == [tuple(r) for r in records]


class TestGuards:
    def test_dense_limit(self):
        schema = Schema([Attribute(f"b{i}", 2) for i in range(30)])
        with pytest.raises(DomainSizeError):
            schema.check_dense_feasible(limit_bits=26)

    def test_dense_limit_passes_for_small(self, mixed_schema):
        mixed_schema.check_dense_feasible(limit_bits=10)
