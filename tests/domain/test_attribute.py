"""Tests for attribute descriptions."""

from __future__ import annotations

import pytest

from repro.domain.attribute import Attribute, binary_attribute
from repro.exceptions import SchemaError


class TestConstruction:
    def test_basic(self):
        attr = Attribute("education", 16)
        assert attr.name == "education"
        assert attr.cardinality == 16

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", 2)

    @pytest.mark.parametrize("cardinality", [0, 1, -3])
    def test_small_cardinality_rejected(self, cardinality):
        with pytest.raises(SchemaError):
            Attribute("x", cardinality)

    def test_label_count_must_match(self):
        with pytest.raises(SchemaError):
            Attribute("sex", 2, labels=("Male",))

    def test_frozen(self):
        attr = Attribute("x", 2)
        with pytest.raises(AttributeError):
            attr.cardinality = 4  # type: ignore[misc]


class TestBitWidths:
    @pytest.mark.parametrize(
        "cardinality, bits",
        [(2, 1), (3, 2), (4, 2), (5, 3), (7, 3), (8, 3), (9, 4), (15, 4), (16, 4), (17, 5)],
    )
    def test_bits(self, cardinality, bits):
        assert Attribute("x", cardinality).bits == bits

    def test_encoded_cardinality_is_power_of_two(self):
        attr = Attribute("occupation", 15)
        assert attr.encoded_cardinality == 16
        assert attr.encoded_cardinality >= attr.cardinality

    def test_paper_adult_bit_total(self):
        # workclass 9, education 16, marital 7, occupation 15, relationship 6,
        # race 5, sex 2, salary 2 -> 4+4+3+4+3+3+1+1 = 23 bits.
        cardinalities = [9, 16, 7, 15, 6, 5, 2, 2]
        assert sum(Attribute(f"a{i}", c).bits for i, c in enumerate(cardinalities)) == 23


class TestValuesAndLabels:
    def test_is_binary(self):
        assert Attribute("sex", 2).is_binary
        assert not Attribute("race", 5).is_binary

    def test_validate_value(self):
        attr = Attribute("x", 3)
        assert attr.validate_value(2) == 2
        with pytest.raises(SchemaError):
            attr.validate_value(3)
        with pytest.raises(SchemaError):
            attr.validate_value(-1)

    def test_label_of_with_labels(self):
        attr = Attribute("sex", 2, labels=("Male", "Female"))
        assert attr.label_of(1) == "Female"

    def test_label_of_without_labels(self):
        assert Attribute("x", 4).label_of(3) == "3"

    def test_binary_attribute_helper(self):
        attr = binary_attribute("flag", labels=["no", "yes"])
        assert attr.cardinality == 2
        assert attr.label_of(1) == "yes"
