"""Tests for contingency tables and marginalisation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.domain import Attribute, ContingencyTable, Dataset, Schema
from repro.domain.contingency import marginal_from_vector
from repro.exceptions import SchemaError
from tests.conftest import brute_force_marginal


class TestMarginalFromVector:
    def test_full_mask_returns_copy(self):
        x = np.arange(8.0)
        result = marginal_from_vector(x, 0b111, 3)
        assert np.array_equal(result, x)
        result[0] = 99
        assert x[0] == 0

    def test_zero_mask_is_total(self):
        x = np.arange(16.0)
        assert marginal_from_vector(x, 0, 4) == pytest.approx(x.sum())

    def test_paper_example_values(self, paper_example_table):
        # Figure 1(a): the five tuples of table D.  In this library A is bit 0,
        # B bit 1 and C bit 2 (the paper linearises with A most significant,
        # so the raw vector layout differs but the marginals must not).
        x = paper_example_table.counts
        assert x.sum() == 5
        # Marginal over A, B: (0,0)=3, (1,0)=0, (0,1)=1, (1,1)=1.
        ab = marginal_from_vector(x, 0b011, 3)
        assert ab.tolist() == [3.0, 0.0, 1.0, 1.0]
        a = marginal_from_vector(x, 0b001, 3)
        assert a.tolist() == [4.0, 1.0]

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            marginal_from_vector(np.zeros(7), 0b1, 3)

    def test_mask_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            marginal_from_vector(np.zeros(8), 0b1000, 3)

    def test_matches_brute_force_fixed(self, random_counts_5):
        for mask in [0b00001, 0b10101, 0b01110, 0b11111, 0b10000]:
            fast = marginal_from_vector(random_counts_5, mask, 5)
            slow = brute_force_marginal(random_counts_5, mask, 5)
            assert np.allclose(fast, slow)

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(st.integers(0, 20), min_size=16, max_size=16),
        mask=st.integers(0, 15),
    )
    def test_matches_brute_force_property(self, data, mask):
        x = np.array(data, dtype=float)
        assert np.allclose(
            marginal_from_vector(x, mask, 4), brute_force_marginal(x, mask, 4)
        )

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(st.integers(0, 20), min_size=32, max_size=32),
        mask=st.integers(0, 31),
    )
    def test_total_preserved(self, data, mask):
        x = np.array(data, dtype=float)
        assert marginal_from_vector(x, mask, 5).sum() == pytest.approx(x.sum())

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(st.integers(0, 20), min_size=32, max_size=32),
        sub=st.integers(0, 31),
        sup=st.integers(0, 31),
    )
    def test_marginal_of_marginal(self, data, sub, sup):
        """Aggregating a marginal further equals marginalising directly."""
        from repro.strategies.marginal import submarginal

        x = np.array(data, dtype=float)
        sub = sub & sup  # ensure sub is dominated by sup
        direct = marginal_from_vector(x, sub, 5)
        via_super = submarginal(marginal_from_vector(x, sup, 5), sup, sub)
        assert np.allclose(direct, via_super)


class TestContingencyTable:
    def test_from_records_counts(self, binary_schema_3):
        table = ContingencyTable.from_records(
            binary_schema_3, [(0, 0, 1), (0, 1, 1), (0, 0, 0), (0, 0, 1), (1, 1, 0)]
        )
        assert table.total == 5
        assert table.domain_size == 8
        assert table.counts.sum() == 5

    def test_shape_validation(self, binary_schema_3):
        with pytest.raises(SchemaError):
            ContingencyTable(binary_schema_3, np.zeros(7))

    def test_marginal_by_attribute_names(self, paper_example_table):
        ab = paper_example_table.marginal(["A", "B"])
        assert ab.tolist() == [3.0, 0.0, 1.0, 1.0]
        c = paper_example_table.marginal(["C"])
        assert c.tolist() == [2.0, 3.0]

    def test_marginal_by_mask(self, paper_example_table):
        assert paper_example_table.marginal_by_mask(0b001).tolist() == [4.0, 1.0]

    def test_marginal_accepts_raw_mask_via_marginal(self, paper_example_table):
        assert np.array_equal(
            paper_example_table.marginal(0b011), paper_example_table.marginal(["A", "B"])
        )

    def test_resolve_mask_out_of_range(self, paper_example_table):
        with pytest.raises(SchemaError):
            paper_example_table.resolve_mask(1 << 10)

    def test_marginal_size(self, paper_example_table):
        assert paper_example_table.marginal_size(["A", "B"]) == 4
        assert paper_example_table.marginal_size(["A"]) == 2

    def test_zeros_and_copy(self, binary_schema_3):
        table = ContingencyTable.zeros(binary_schema_3)
        assert table.total == 0
        copy = table.copy()
        copy.counts[0] = 5
        assert table.counts[0] == 0

    def test_counts_are_copied_on_construction(self, binary_schema_3):
        raw = np.zeros(8)
        table = ContingencyTable(binary_schema_3, raw)
        raw[0] = 7
        assert table.counts[0] == 0

    def test_mixed_cardinality_padding_cells_are_zero(self):
        schema = Schema([Attribute("y", 3)])
        table = ContingencyTable.from_records(schema, [(0,), (1,), (2,), (2,)])
        # Domain has 4 cells; code 3 is padding and must stay zero.
        assert table.counts.tolist() == [1.0, 1.0, 2.0, 0.0]

    def test_repr_mentions_dimensions(self, paper_example_table):
        assert "d=3" in repr(paper_example_table)


class TestCubeCache:
    """The (2,)*d cube view is computed once and shared with the counts."""

    def test_cube_is_cached(self, paper_example_table):
        assert paper_example_table.cube is paper_example_table.cube

    def test_cube_shares_memory_with_counts(self, paper_example_table):
        assert np.shares_memory(paper_example_table.cube, paper_example_table.counts)
        assert paper_example_table.cube.shape == (2,) * paper_example_table.dimension

    def test_cube_reflects_count_mutation(self, binary_schema_3):
        table = ContingencyTable.zeros(binary_schema_3)
        _ = table.cube  # populate the cache before mutating
        table.counts[0] = 9.0
        assert table.cube.reshape(-1)[0] == 9.0
        assert table.marginal_by_mask(0)[0] == 9.0

    def test_marginals_match_marginal_from_vector(self, paper_example_table):
        from repro.domain.contingency import marginal_from_vector

        d = paper_example_table.dimension
        for mask in range(paper_example_table.domain_size):
            assert np.array_equal(
                paper_example_table.marginal_by_mask(mask),
                marginal_from_vector(paper_example_table.counts, mask, d),
            )

    def test_full_mask_marginal_is_a_copy(self, paper_example_table):
        full = paper_example_table.domain_size - 1
        values = paper_example_table.marginal_by_mask(full)
        values[0] += 1.0
        assert not np.array_equal(values, paper_example_table.counts)

    def test_invalid_mask_rejected(self, paper_example_table):
        with pytest.raises(ValueError):
            paper_example_table.marginal_by_mask(paper_example_table.domain_size)
