"""Tests for record-level datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.domain import Attribute, Dataset, Schema
from repro.exceptions import DataError, SchemaError


@pytest.fixture
def dataset(mixed_schema) -> Dataset:
    records = [
        (0, 0, 0),
        (1, 2, 3),
        (1, 1, 1),
        (0, 2, 3),
        (1, 2, 3),
    ]
    return Dataset.from_tuples(mixed_schema, records, name="unit")


class TestConstruction:
    def test_length_and_name(self, dataset):
        assert len(dataset) == 5
        assert dataset.name == "unit"

    def test_records_read_only(self, dataset):
        with pytest.raises(ValueError):
            dataset.records[0, 0] = 1

    def test_wrong_column_count_rejected(self, mixed_schema):
        with pytest.raises(DataError):
            Dataset(mixed_schema, np.zeros((3, 2), dtype=int))

    def test_out_of_domain_values_rejected(self, mixed_schema):
        with pytest.raises(DataError):
            Dataset(mixed_schema, [[0, 3, 0]])

    def test_empty_dataset_allowed(self, mixed_schema):
        data = Dataset(mixed_schema, np.empty((0, 3), dtype=int))
        assert len(data) == 0
        assert data.to_vector().sum() == 0

    def test_iteration_yields_tuples(self, dataset):
        rows = list(dataset)
        assert rows[1] == (1, 2, 3)
        assert all(isinstance(row, tuple) for row in rows)


class TestConversions:
    def test_vector_total_matches_record_count(self, dataset):
        assert dataset.to_vector().sum() == len(dataset)

    def test_contingency_table_is_cached(self, dataset):
        assert dataset.contingency_table() is dataset.contingency_table()

    def test_marginal_matches_manual_count(self, dataset):
        marginal = dataset.marginal(["x"])
        assert marginal.tolist() == [2.0, 3.0]

    def test_marginal_two_attributes(self, dataset):
        marginal = dataset.marginal(["x", "y"])
        # Cells indexed by (x, y) compactly: x varies fastest.
        assert marginal.sum() == len(dataset)
        assert marginal[dataset.schema.mask_of([]) if False else 0] >= 0  # shape sanity
        assert marginal.shape == (8,)


class TestManipulation:
    def test_project_keeps_columns(self, dataset):
        projected = dataset.project(["z", "x"])
        assert projected.schema.names == ("z", "x")
        assert projected.records.shape == (5, 2)
        assert projected.records[1].tolist() == [3, 1]

    def test_project_requires_attributes(self, dataset):
        with pytest.raises(SchemaError):
            dataset.project([])

    def test_sample_without_replacement(self, dataset):
        sample = dataset.sample(3, rng=0)
        assert len(sample) == 3
        assert sample.schema == dataset.schema

    def test_sample_too_large_rejected(self, dataset):
        with pytest.raises(DataError):
            dataset.sample(10)

    def test_sample_reproducible(self, dataset):
        a = dataset.sample(4, rng=5).records
        b = dataset.sample(4, rng=5).records
        assert np.array_equal(a, b)
