"""Unit tests of the micro-batcher: coalescing, deadlines, error routing."""

from __future__ import annotations

import asyncio
from typing import List, Optional

import pytest

from repro.exceptions import DeadlineExceededError
from repro.net.batching import MicroBatcher
from repro.serving.service import QueryRequest


class RecordingRunner:
    """Echoes each request back as its 'answer', recording every call."""

    def __init__(self, delay_s: float = 0.0):
        self.calls: List[tuple] = []
        self.delay_s = delay_s

    async def __call__(self, requests, release_id):
        self.calls.append((list(requests), release_id))
        if self.delay_s:
            await asyncio.sleep(self.delay_s)
        return list(requests)


def req(mask: int) -> QueryRequest:
    return QueryRequest(mask=mask)


class TestMicroBatcher:
    def test_concurrent_submits_coalesce_into_one_runner_call(self):
        async def _run():
            runner = RecordingRunner()
            batcher = MicroBatcher(runner, window_s=0.02, max_batch=100)
            first, second = await asyncio.gather(
                batcher.submit([req(1)]), batcher.submit([req(2), req(3)])
            )
            return runner, first, second

        runner, first, second = asyncio.run(_run())
        assert len(runner.calls) == 1  # one grouped flush
        assert [r.mask for r in runner.calls[0][0]] == [1, 2, 3]
        assert [r.mask for r in first] == [1]
        assert [r.mask for r in second] == [2, 3]

    def test_max_batch_flushes_immediately(self):
        async def _run():
            runner = RecordingRunner()
            batcher = MicroBatcher(runner, window_s=10.0, max_batch=2)
            # Two queries hit max_batch: flushes without waiting the window.
            return await asyncio.wait_for(
                batcher.submit([req(1), req(2)]), timeout=1.0
            )

        answers = asyncio.run(_run())
        assert [r.mask for r in answers] == [1, 2]

    def test_zero_window_means_no_waiting(self):
        async def _run():
            runner = RecordingRunner()
            batcher = MicroBatcher(runner, window_s=0.0, max_batch=100)
            await batcher.submit([req(1)])
            await batcher.submit([req(2)])
            return runner

        runner = asyncio.run(_run())
        assert len(runner.calls) == 2  # nothing coalesced, nothing delayed

    def test_expired_entries_fail_without_reaching_the_runner(self):
        async def _run():
            runner = RecordingRunner()
            batcher = MicroBatcher(runner, window_s=0.05, max_batch=100)
            loop = asyncio.get_running_loop()
            expired = batcher.submit([req(1)], deadline=loop.time() - 0.001)
            live = batcher.submit([req(2)], deadline=loop.time() + 60.0)
            results = await asyncio.gather(expired, live, return_exceptions=True)
            return runner, results

        runner, (expired_result, live_result) = asyncio.run(_run())
        assert isinstance(expired_result, DeadlineExceededError)
        assert [r.mask for r in live_result] == [2]
        # The expired request's queries were never aggregated.
        assert len(runner.calls) == 1
        assert [r.mask for r in runner.calls[0][0]] == [2]

    def test_all_expired_skips_the_runner_entirely(self):
        async def _run():
            runner = RecordingRunner()
            batcher = MicroBatcher(runner, window_s=0.01, max_batch=100)
            loop = asyncio.get_running_loop()
            with pytest.raises(DeadlineExceededError):
                await batcher.submit([req(1)], deadline=loop.time() - 1.0)
            return runner

        runner = asyncio.run(_run())
        assert runner.calls == []

    def test_pinned_releases_flush_in_separate_groups(self):
        async def _run():
            runner = RecordingRunner()
            batcher = MicroBatcher(runner, window_s=0.02, max_batch=100)
            await asyncio.gather(
                batcher.submit([req(1)], release_id="release-0001"),
                batcher.submit([req(2)], release_id=None),
            )
            return runner

        runner = asyncio.run(_run())
        assert len(runner.calls) == 2
        assert {call[1] for call in runner.calls} == {"release-0001", None}

    def test_runner_error_reaches_every_waiter(self):
        class Failing:
            async def __call__(self, requests, release_id):
                raise RuntimeError("boom")

        async def _run():
            batcher = MicroBatcher(Failing(), window_s=0.01, max_batch=100)
            return await asyncio.gather(
                batcher.submit([req(1)]),
                batcher.submit([req(2)]),
                return_exceptions=True,
            )

        results = asyncio.run(_run())
        assert all(isinstance(result, RuntimeError) for result in results)

    def test_wrong_answer_count_is_an_error_not_a_hang(self):
        class Short:
            async def __call__(self, requests, release_id):
                return []

        async def _run():
            batcher = MicroBatcher(Short(), window_s=0.0, max_batch=100)
            with pytest.raises(RuntimeError, match="0 answers for 1 requests"):
                await batcher.submit([req(1)])

        asyncio.run(_run())

    def test_drain_flushes_pending_queues(self):
        async def _run():
            runner = RecordingRunner()
            batcher = MicroBatcher(runner, window_s=60.0, max_batch=100)
            pending = asyncio.ensure_future(batcher.submit([req(1)]))
            await asyncio.sleep(0)  # let submit enqueue
            await batcher.drain()
            return await asyncio.wait_for(pending, timeout=1.0)

        answers = asyncio.run(_run())
        assert [r.mask for r in answers] == [1]

    def test_stats_counts_flushes(self):
        async def _run():
            runner = RecordingRunner()
            batcher = MicroBatcher(runner, window_s=0.0, max_batch=100)
            await batcher.submit([req(1), req(2)])
            return batcher.stats()

        stats = asyncio.run(_run())
        assert stats["flushes"] == 1
        assert stats["coalesced_requests"] == 2
        assert stats["mean_flush_size"] == 2.0
