"""Shared fixtures of the HTTP serving-tier test suite."""

from __future__ import annotations

import http.client
import json
from typing import Optional, Tuple

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.domain import Schema
from repro.queries import all_k_way
from repro.serving.service import QueryService
from repro.serving.store import ReleaseStore


@pytest.fixture
def schema() -> Schema:
    return Schema.binary(["a", "b", "c", "d", "e"])


@pytest.fixture
def counts(schema) -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.integers(0, 50, size=schema.domain_size).astype(np.float64)


@pytest.fixture
def release(schema, counts):
    """A consistent Fourier release of all 2-way marginals."""
    workload = all_k_way(schema, 2)
    return release_marginals(counts, workload, budget=1.0, strategy="F", rng=3)


@pytest.fixture
def store(tmp_path, release) -> ReleaseStore:
    store = ReleaseStore(tmp_path / "store", create=True)
    store.put(release)
    return store


@pytest.fixture
def service(store) -> QueryService:
    return QueryService(store)


class Client:
    """A minimal keep-alive HTTP client for exercising the server."""

    def __init__(self, host: str, port: int):
        self.conn = http.client.HTTPConnection(host, port, timeout=30)

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[dict] = None,
    ) -> Tuple[int, dict, bytes]:
        self.conn.request(method, path, body=body, headers=headers or {})
        response = self.conn.getresponse()
        payload = response.read()
        return response.status, dict(response.getheaders()), payload

    def get(self, path: str) -> Tuple[int, dict, bytes]:
        return self.request("GET", path)

    def post_json(
        self, path: str, obj: object, headers: Optional[dict] = None
    ) -> Tuple[int, dict, bytes]:
        merged = {"Content-Type": "application/json"}
        merged.update(headers or {})
        return self.request(
            "POST", path, body=json.dumps(obj).encode("utf-8"), headers=merged
        )

    def close(self) -> None:
        self.conn.close()


@pytest.fixture
def client_factory():
    clients = []

    def make(address: Tuple[str, int]) -> Client:
        client = Client(*address)
        clients.append(client)
        return client

    yield make
    for client in clients:
        client.close()
