"""The ``repro serve`` CLI: startup validation and SIGTERM drain."""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.serving.store import ReleaseStore

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def store_dir(tmp_path, release) -> Path:
    root = tmp_path / "store"
    ReleaseStore(root, create=True).put(release)
    return root


class TestServeValidation:
    def test_missing_store_is_exit_2(self, tmp_path, capsys):
        code = main(["serve", "--store", str(tmp_path / "nope")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_verify_start_refuses_a_corrupt_store(self, tmp_path, release, capsys):
        # Tamper with a stored vector: --verify-start must refuse to serve.
        root = tmp_path / "cstore"
        store = ReleaseStore(root, store_format="v2")
        rid = store.put(release)
        target = next((root / rid / "marginals").glob("*.npy"))
        data = np.load(target) + 1.0
        np.save(target, data)
        code = main(["serve", "--store", str(root), "--verify-start"])
        assert code == 1
        assert "refusing to serve" in capsys.readouterr().err

    def test_bad_flag_values_are_rejected(self, store_dir, capsys):
        code = main(["serve", "--store", str(store_dir), "--max-pending", "0"])
        assert code == 2
        assert "max_pending" in capsys.readouterr().err


class TestServeProcess:
    def test_sigterm_drains_and_exits_zero(self, store_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(store_dir), "--port", "0",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = process.stderr.readline()
            match = re.search(r"http://([\d.]+):(\d+)", line)
            assert match, f"no address in startup line: {line!r}"
            host, port = match.group(1), int(match.group(2))

            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request(
                "POST",
                "/v1/query",
                body=json.dumps({"attributes": ["a", "b"]}),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200
            assert payload["release"] == "release-0001"
            conn.close()

            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            stderr = process.stderr.read()
            assert code == 0
            assert "drained : " in stderr
            assert "0 aborted" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


class TestStatsExitCodes:
    """The ``repro stats --store`` operator contract (exit 2 vs 1 vs 0)."""

    def test_healthy_store_is_exit_0(self, store_dir, capsys):
        assert main(["stats", "--store", str(store_dir)]) == 0
        assert "health  : OK" in capsys.readouterr().out

    def test_missing_store_is_exit_2_with_a_targeted_message(
        self, tmp_path, capsys
    ):
        code = main(["stats", "--store", str(tmp_path / "definitely-missing")])
        assert code == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
        assert "repro release --out" in err

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_unreadable_release_metadata_is_exit_1_not_silent_ok(
        self, store_dir, capsys
    ):
        # Truncate a release's meta.json: the old code silently dropped the
        # release from the index and reported a healthy empty store.
        store = ReleaseStore(store_dir, create=False)
        rid = store.release_ids()[0]
        (store_dir / rid / "meta.json").write_text("{ definitely not json")
        code = main(["stats", "--store", str(store_dir)])
        captured = capsys.readouterr()
        assert code == 1
        assert "CORRUPT" in captured.out
        assert "unreadable release metadata" in captured.out
        assert "DEGRADED" in captured.out

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_corrupt_vector_is_exit_1(self, store_dir, capsys):
        store = ReleaseStore(store_dir, create=False)
        rid = store.release_ids()[0]
        npz = store_dir / rid / "marginals.npz"
        if npz.exists():
            with open(npz, "r+b") as handle:
                handle.truncate(60)
        else:
            target = next((store_dir / rid / "marginals").glob("*.npy"))
            with open(target, "r+b") as handle:
                handle.truncate(40)
        code = main(["stats", "--store", str(store_dir)])
        assert code == 1
        assert "CORRUPT" in capsys.readouterr().out
