"""Fault injection at the serving edge: torn reads and handler crashes.

The contracts under test:

* a ``net.read`` fault (the socket dying mid-upload) is a clean 400 that
  closes the connection — the body is never parsed, no query is admitted,
  and nothing reaches the aggregation path;
* a ``net.handler`` fault (a crash between admission and batching) is a
  clean 500 marked retryable, and the admission slot is released — the
  queue can never leak capacity through errors;
* under *any* retryable fault plan, a retrying client eventually gets an
  answer, and every 200 it ever receives is byte-for-byte the in-process
  answer: faults may cost retries, never correctness.
"""

from __future__ import annotations

import json

import pytest

from repro.net.protocol import answer_payload, encode_canonical
from repro.net.server import BackgroundServer, ServerConfig
from repro.resilience.faults import FaultPlan, FaultSpec, fault_injection
from repro.serving.service import QueryService


@pytest.fixture
def server(service, client_factory):
    config = ServerConfig(port=0, batch_window_ms=0.0)
    with BackgroundServer(service, config) as background:
        yield background


class TestNetReadFaults:
    def test_torn_body_read_is_400_and_never_aggregates(
        self, server, service, client_factory
    ):
        plan = FaultPlan([FaultSpec("net.read", hits=(1,))])
        batches_before = service.stats()["batches"]
        with fault_injection(plan) as injector:
            client = client_factory(server.address)
            status, _, body = client.post_json(
                "/v1/query", {"attributes": ["a", "b"]}
            )
            assert status == 400
            assert "read failed" in json.loads(body)["error"]
            assert injector.injected("net.read") == 1
            # Nothing was admitted, nothing was aggregated.
            assert service.stats()["batches"] == batches_before
            assert server.server.server_stats()["accepted"] == 0
            # The connection was closed (stream position untrusted); a new
            # connection retries the same request successfully.
            retry = client_factory(server.address)
            status, _, _ = retry.post_json("/v1/query", {"attributes": ["a", "b"]})
            assert status == 200

    def test_healthz_has_no_body_and_survives_read_faults(
        self, server, client_factory
    ):
        # GET requests carry no body, so the body-read site never fires.
        plan = FaultPlan([FaultSpec("net.read", hits=(1, 2, 3))])
        with fault_injection(plan) as injector:
            client = client_factory(server.address)
            status, _, _ = client.get("/healthz")
            assert status == 200
            assert injector.injected("net.read") == 0


class TestNetHandlerFaults:
    def test_handler_crash_is_a_clean_500_that_releases_admission(
        self, server, service, client_factory
    ):
        plan = FaultPlan([FaultSpec("net.handler", hits=(1,))])
        with fault_injection(plan) as injector:
            client = client_factory(server.address)
            status, _, body = client.post_json(
                "/v1/query", {"attributes": ["a", "b"]}
            )
            assert status == 500
            payload = json.loads(body)
            assert payload["retryable"] is True
            assert injector.injected("net.handler") == 1
            stats = server.server.server_stats()
            # The admission slot came back: nothing pending, nothing leaked.
            assert stats["admission"]["pending"] == 0
            # Same connection, same request: succeeds on retry.
            status, _, _ = client.post_json("/v1/query", {"attributes": ["a", "b"]})
            assert status == 200


class TestRetryableFaultPlansNeverCorruptAnswers:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_every_200_under_a_noisy_plan_is_byte_exact(
        self, service, store, client_factory
    ):
        reference = QueryService(store)
        config = ServerConfig(port=0, batch_window_ms=0.0)
        plan = FaultPlan(
            [
                FaultSpec("net.read", rate=0.3),
                FaultSpec("net.handler", rate=0.3),
            ],
            seed=11,
        )
        queries = [
            {"attributes": ["a"]},
            {"attributes": ["a", "b"]},
            {"attributes": ["c"], "where": {"d": 1}},
            {"attributes": ["d", "e"]},
        ]
        with BackgroundServer(service, config) as background:
            with fault_injection(plan) as injector:
                for query in queries:
                    expected = encode_canonical(
                        answer_payload(
                            reference.query(
                                query["attributes"], where=query.get("where")
                            )
                        )
                    )
                    for attempt in range(50):
                        client = client_factory(background.address)
                        status, _, body = client.post_json("/v1/query", query)
                        if status == 200:
                            break
                        assert status in (400, 500)  # only injected failures
                    else:
                        pytest.fail("retryable plan never let the query through")
                    assert body == expected
                assert injector.injected() > 0  # the plan actually fired
