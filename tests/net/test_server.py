"""End-to-end tests of the HTTP serving tier over a real socket."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.net.protocol import answer_payload, encode_canonical
from repro.net.server import BackgroundServer, ServerConfig
from repro.obs import tracing
from repro.serving.service import QueryService
from repro.serving.store import ReleaseStore


@pytest.fixture
def server(service, client_factory):
    config = ServerConfig(port=0, batch_window_ms=0.5)
    with BackgroundServer(service, config) as background:
        yield background


@pytest.fixture
def client(server, client_factory):
    return client_factory(server.address)


class TestEndpoints:
    def test_healthz(self, client):
        status, _, body = client.get("/healthz")
        assert status == 200
        assert json.loads(body) == {"ok": True, "draining": False}

    def test_readyz_on_a_healthy_store(self, client):
        status, _, body = client.get("/readyz")
        payload = json.loads(body)
        assert status == 200
        assert payload["ready"] is True
        assert payload["health"]["ok"] is True
        assert payload["open_breakers"] == {}

    def test_statsz_carries_the_obs_schema_and_server_block(self, client):
        status, _, body = client.get("/statsz")
        payload = json.loads(body)
        assert status == 200
        assert payload["schema"] == "repro.obs/v1"
        server_stats = payload["server"]
        assert {"admission", "batching", "breaker", "service"} <= set(server_stats)

    def test_unknown_path_is_404(self, client):
        status, _, body = client.get("/nope")
        assert status == 404

    def test_wrong_method_is_405_with_allow(self, client):
        status, headers, _ = client.get("/v1/query")
        assert status == 405
        assert headers["Allow"] == "POST"

    def test_statsz_validates_as_a_trace_payload(self, client):
        from repro.obs import validate_payload

        _, _, body = client.get("/statsz")
        validate_payload(json.loads(body))


class TestQueries:
    def test_single_query_matches_in_process_byte_for_byte(
        self, client, store
    ):
        reference = QueryService(store)
        status, _, body = client.post_json("/v1/query", {"attributes": ["a", "b"]})
        assert status == 200
        expected = encode_canonical(
            answer_payload(reference.query(["a", "b"]))
        )
        assert body == expected

    def test_batch_array_matches_in_process(self, client, store):
        reference = QueryService(store)
        queries = [
            {"attributes": ["a"]},
            {"attributes": ["b", "c"]},
            {"attributes": ["a"], "where": {"b": 1}},
        ]
        status, headers, body = client.post_json("/v1/query/batch", queries)
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        expected = encode_canonical(
            [
                answer_payload(answer)
                for answer in reference.query_batch(
                    [
                        {"attributes": ("a",)},
                        {"attributes": ("b", "c")},
                        {"attributes": ("a",), "where": {"b": 1}},
                    ]
                )
            ]
        )
        assert body == expected

    def test_batch_ndjson_in_ndjson_out(self, client):
        nd = b'{"attributes":["a"]}\n{"mask":3}\n'
        status, headers, body = client.request(
            "POST",
            "/v1/query/batch",
            body=nd,
            headers={"Content-Type": "application/x-ndjson"},
        )
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        lines = [line for line in body.split(b"\n") if line]
        assert len(lines) == 2
        for line in lines:
            payload = json.loads(line)
            assert "values" in payload and payload["release"] == "release-0001"

    def test_pinned_release_roundtrips(self, client):
        status, _, body = client.post_json(
            "/v1/query", {"attributes": ["a"], "release": "release-0001"}
        )
        assert status == 200
        assert json.loads(body)["release"] == "release-0001"

    def test_unknown_attribute_is_400_not_500(self, client):
        status, _, body = client.post_json("/v1/query", {"attributes": ["zz"]})
        assert status == 400
        assert "error" in json.loads(body)

    def test_uncovered_marginal_is_400(self, client):
        status, _, body = client.post_json(
            "/v1/query", {"attributes": ["a", "b", "c"]}
        )
        assert status == 400
        assert "covers" in json.loads(body)["error"]

    def test_mixed_release_pins_in_one_batch_are_rejected(self, client):
        status, _, body = client.post_json(
            "/v1/query/batch",
            [
                {"attributes": ["a"], "release": "release-0001"},
                {"attributes": ["b"], "release": "release-0002"},
            ],
        )
        assert status == 400
        assert "same release" in json.loads(body)["error"]

    def test_empty_batch_is_400(self, client):
        status, _, _ = client.post_json("/v1/query/batch", [])
        assert status == 400

    def test_malformed_json_is_400(self, client):
        status, _, _ = client.request(
            "POST", "/v1/query", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400

    def test_keep_alive_across_requests(self, client):
        for _ in range(3):
            status, _, _ = client.post_json("/v1/query", {"attributes": ["a"]})
            assert status == 200


class TestShedding:
    def test_oversized_batch_sheds_with_503_and_retry_after(
        self, service, client_factory
    ):
        config = ServerConfig(port=0, max_pending=2, batch_window_ms=0.0)
        with BackgroundServer(service, config) as background:
            client = client_factory(background.address)
            queries = [{"attributes": ["a"]}] * 5  # weight 5 > max_pending 2
            status, headers, body = client.post_json("/v1/query/batch", queries)
            assert status == 503
            payload = json.loads(body)
            assert payload["reason"] == "queue_full"
            assert int(headers["Retry-After"]) >= 1
            # Within-capacity traffic still flows.
            status, _, _ = client.post_json("/v1/query", {"attributes": ["a"]})
            assert status == 200
            stats = background.server.server_stats()
            assert stats["admission"]["shed_by_reason"]["queue_full"] == 1

    def test_expired_deadline_is_504_and_never_aggregated(
        self, service, client_factory
    ):
        # A 150ms batching window with a 1ms budget: the deadline expires
        # while queued, so the flush must drop the request un-aggregated.
        config = ServerConfig(port=0, batch_window_ms=150.0)
        with BackgroundServer(service, config) as background:
            client = client_factory(background.address)
            batches_before = service.stats()["batches"]
            status, _, body = client.post_json(
                "/v1/query",
                {"attributes": ["a", "b"]},
                headers={"X-Deadline-Ms": "1"},
            )
            assert status == 504
            assert service.stats()["batches"] == batches_before

    def test_draining_requests_get_503(self, server, client_factory):
        client = client_factory(server.address)
        status, _, _ = client.post_json("/v1/query", {"attributes": ["a"]})
        assert status == 200
        server.server._draining = True
        try:
            status, _, body = client.post_json("/v1/query", {"attributes": ["a"]})
            assert status == 503
            assert json.loads(body)["reason"] == "draining"
        finally:
            server.server._draining = False


class TestDrain:
    def test_drain_reports_no_aborts_and_refuses_new_connections(
        self, service, client_factory
    ):
        import socket

        config = ServerConfig(port=0, batch_window_ms=0.5)
        background = BackgroundServer(service, config)
        host, port = background.start()
        client = client_factory((host, port))
        for _ in range(3):
            status, _, _ = client.post_json("/v1/query", {"attributes": ["a"]})
            assert status == 200
        report = background.stop()
        assert report == {"completed": 0, "aborted": 0}
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)

    def test_drain_is_idempotent(self, service):
        config = ServerConfig(port=0)
        background = BackgroundServer(service, config)
        background.start()
        first = background.drain()
        assert background.drain() == first
        background.stop()


class TestBreaker:
    @pytest.fixture
    def corrupt_store(self, tmp_path, release) -> ReleaseStore:
        """A v2 store whose first 2-way cuboid's vector was tampered with."""
        store = ReleaseStore(tmp_path / "cstore", store_format="v2")
        rid = store.put(release)
        clean = QueryService(ReleaseStore(tmp_path / "cstore", create=False))
        # Corrupt the source that serves the 1-way 'a' marginal: after the
        # quarantine, other 2-way cuboids containing 'a' still cover it, so
        # the query degrades instead of failing.
        answer = clean.query(["a"])
        target = (
            Path(store.root)
            / rid
            / "marginals"
            / f"marginal_{answer.plan.source_position:05d}.npy"
        )
        bad = np.asarray(
            release.marginals[answer.plan.source_position], dtype=np.float64
        ).copy()
        bad[0] += 1.0
        np.save(target, bad)
        return ReleaseStore(tmp_path / "cstore", create=False)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_degraded_pinned_answers_trip_the_breaker(
        self, corrupt_store, client_factory
    ):
        service = QueryService(corrupt_store)
        config = ServerConfig(
            port=0, batch_window_ms=0.0, breaker_threshold=1, breaker_cooldown_s=60.0
        )
        with BackgroundServer(service, config) as background:
            client = client_factory(background.address)
            # First pinned query: served, but degraded (quarantined source).
            status, _, body = client.post_json(
                "/v1/query",
                {"attributes": ["a"], "release": "release-0001"},
            )
            assert status == 200
            assert json.loads(body)["degraded"] is True
            # The breaker opened: the next pinned request is refused fast.
            status, headers, body = client.post_json(
                "/v1/query",
                {"attributes": ["a"], "release": "release-0001"},
            )
            assert status == 503
            assert json.loads(body)["reason"] == "breaker_open"
            assert int(headers["Retry-After"]) >= 1
            # Unpinned queries on healthy cuboids still flow.
            status, _, _ = client.post_json("/v1/query", {"attributes": ["b", "c"]})
            assert status == 200
            # Readiness reflects the open breaker.
            status, _, body = client.get("/readyz")
            assert status == 503
            assert "release-0001" in json.loads(body)["open_breakers"]


    def test_client_errors_do_not_trip_the_breaker(self, service, client_factory):
        # Regression: a request-validation 400 used to count as a breaker
        # failure, so one misbehaving client pinning a release could 503
        # everyone else's valid pinned traffic and flip /readyz.
        config = ServerConfig(port=0, batch_window_ms=0.0, breaker_threshold=1)
        with BackgroundServer(service, config) as background:
            client = client_factory(background.address)
            bad = {"attributes": ["zz"], "release": "release-0001"}
            for _ in range(3):
                status, _, _ = client.post_json("/v1/query", bad)
                assert status == 400
            status, _, _ = client.post_json(
                "/v1/query", {"attributes": ["a"], "release": "release-0001"}
            )
            assert status == 200
            status, _, _ = client.get("/readyz")
            assert status == 200

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_aborted_probe_does_not_wedge_the_breaker(
        self, corrupt_store, client_factory
    ):
        # Regression: a half-open probe exiting through the 504 path left
        # probing=True forever — every later pinned request was refused and
        # none could ever be admitted to clear the breaker.
        import time

        service = QueryService(corrupt_store)
        config = ServerConfig(
            port=0, batch_window_ms=0.0, breaker_threshold=1,
            breaker_cooldown_s=0.2,
        )
        with BackgroundServer(service, config) as background:
            client = client_factory(background.address)
            pinned = {"attributes": ["a"], "release": "release-0001"}
            status, _, body = client.post_json("/v1/query", pinned)
            assert status == 200 and json.loads(body)["degraded"] is True
            status, _, _ = client.post_json("/v1/query", pinned)
            assert status == 503  # breaker opened on the degraded answer
            time.sleep(0.3)  # cooldown elapses -> half-open
            # The probe's deadline expires while queued: 504, no verdict.
            status, _, _ = client.post_json(
                "/v1/query", pinned, headers={"X-Deadline-Ms": "0.001"}
            )
            assert status == 504
            # The aborted probe freed the slot: the next pinned request is
            # admitted as the new probe instead of being refused forever.
            status, _, body = client.post_json("/v1/query", pinned)
            assert status == 200
            assert json.loads(body)["degraded"] is True


class TestObservability:
    def test_request_spans_and_gauges_reach_statsz(self, store, client_factory):
        service = QueryService(store)
        config = ServerConfig(port=0, batch_window_ms=0.0)
        with tracing() as recorder:
            with BackgroundServer(service, config) as background:
                client = client_factory(background.address)
                for _ in range(3):
                    status, _, _ = client.post_json(
                        "/v1/query", {"attributes": ["a"]}
                    )
                    assert status == 200
                _, _, body = client.get("/statsz")
        payload = json.loads(body)
        assert payload["span_durations"]["net.request"]["count"] == 3
        assert payload["metrics"]["gauges"]["net.queue_depth"] == 0.0
        assert recorder.metrics.snapshot()["counters"]["net.requests"] >= 3
