"""Unit tests of the admission controller: bounded queues, honest sheds."""

from __future__ import annotations

import pytest

from repro.net.admission import (
    EWMA_KEEP,
    INITIAL_SERVICE_TIME_S,
    AdmissionController,
)


class TestAdmission:
    def test_admits_under_the_bound(self):
        admission = AdmissionController(max_pending=10, workers=2)
        assert admission.admit(1, None) is None
        assert admission.pending == 1

    def test_sheds_when_queue_full(self):
        admission = AdmissionController(max_pending=2, workers=1)
        assert admission.admit(2, None) is None
        decision = admission.admit(1, None)
        assert decision is not None
        assert decision.reason == "queue_full"
        assert decision.retry_after >= 1
        assert admission.pending == 2  # the shed request was never counted

    def test_batch_weight_counts_as_many_queries(self):
        admission = AdmissionController(max_pending=10, workers=1)
        assert admission.admit(8, None) is None
        decision = admission.admit(5, None)
        assert decision is not None and decision.reason == "queue_full"
        assert admission.admit(2, None) is None

    def test_release_frees_capacity(self):
        admission = AdmissionController(max_pending=1, workers=1)
        assert admission.admit(1, None) is None
        assert admission.admit(1, None) is not None
        admission.release(1, 0.001)
        assert admission.admit(1, None) is None

    def test_deadline_unmeetable_shed(self):
        admission = AdmissionController(max_pending=1000, workers=1)
        # Teach the EWMA that queries are slow (~1s each).
        admission.admit(1, None)
        admission.release(1, 5.0)
        for _ in range(20):
            assert admission.admit(1, None) is None
        # 20 pending at ~1s each: a 1ms budget is hopeless.
        decision = admission.admit(1, 0.001)
        assert decision is not None
        assert decision.reason == "deadline_unmeetable"
        assert "deadline budget" in decision.detail
        # The same request without a deadline is still admitted.
        assert admission.admit(1, None) is None

    def test_ewma_blends_toward_observations(self):
        admission = AdmissionController(max_pending=10, workers=1)
        admission.admit(1, None)
        admission.release(1, 1.0)
        expected = EWMA_KEEP * INITIAL_SERVICE_TIME_S + (1 - EWMA_KEEP) * 1.0
        assert admission.service_time_s == pytest.approx(expected)

    def test_observe_feeds_ewma_per_query(self):
        admission = AdmissionController(max_pending=10, workers=1)
        admission.observe(10, 1.0)  # one batch: 10 queries in 1s
        expected = EWMA_KEEP * INITIAL_SERVICE_TIME_S + (1 - EWMA_KEEP) * 0.1
        assert admission.service_time_s == pytest.approx(expected)
        assert admission.pending == 0  # observe never touches the queue

    def test_release_without_elapsed_leaves_the_ewma_alone(self):
        # Regression: coalesced requests each reporting the whole batch's
        # wall time inflated the EWMA ~N-fold for N coalesced singles. The
        # server now releases slots with no sample and lets the batch
        # runner observe() true execution time instead.
        admission = AdmissionController(max_pending=10, workers=1)
        admission.admit(1, None)
        admission.release(1)
        assert admission.service_time_s == INITIAL_SERVICE_TIME_S
        assert admission.pending == 0

    def test_release_never_goes_negative(self):
        admission = AdmissionController(max_pending=10, workers=1)
        admission.release(5, 0.1)
        assert admission.pending == 0

    def test_estimated_wait_zero_with_free_workers(self):
        admission = AdmissionController(max_pending=100, workers=4)
        assert admission.estimated_wait_s() == 0.0
        for _ in range(4):
            admission.admit(1, None)
        assert admission.estimated_wait_s() == 0.0
        admission.admit(4, None)
        assert admission.estimated_wait_s() > 0.0

    def test_stats_shape(self):
        admission = AdmissionController(max_pending=5, workers=2)
        admission.admit(1, None)
        admission.admit(5, None)  # shed
        stats = admission.stats()
        assert stats["pending"] == 1
        assert stats["admitted"] == 1
        assert stats["shed"] == 1
        assert stats["shed_by_reason"]["queue_full"] == 1
        assert stats["workers"] == 2

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0, workers=1)
        with pytest.raises(ValueError):
            AdmissionController(max_pending=1, workers=0)
