"""Unit tests of the HTTP/1.1 parsing layer (no sockets: fed streams)."""

from __future__ import annotations

import asyncio

import pytest

from repro.net.http import (
    ProtocolError,
    error_body,
    read_request,
    render_response,
    retry_after_headers,
)


def parse(raw: bytes, **kwargs):
    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(_run())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_body(self):
        raw = (
            b"POST /v1/query HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 7\r\n\r\n"
            b'{"a":1}'
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.body == b'{"a":1}'

    def test_query_string(self):
        request = parse(b"GET /statsz?pretty=1&q=a%20b HTTP/1.1\r\n\r\n")
        assert request.path == "/statsz"
        assert request.query == {"pretty": "1", "q": "a b"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_connection_close_header(self):
        request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not request.keep_alive

    def test_truncated_body_is_400_and_closes(self):
        raw = b"POST /v1/query HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"a\":"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400
        assert "truncated request body" in str(excinfo.value)
        assert excinfo.value.close_connection

    def test_oversized_body_is_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw, max_body_bytes=100)
        assert excinfo.value.status == 413

    def test_malformed_content_length_is_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_negative_content_length_is_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400

    def test_chunked_encoding_is_501(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 501

    def test_malformed_request_line_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"BROKEN\r\n\r\n")
        assert excinfo.value.status == 400

    def test_unsupported_version_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET / HTTP/0.9\r\n\r\n")
        assert excinfo.value.status == 400

    def test_malformed_header_is_400(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert excinfo.value.status == 400

    def test_too_many_headers_is_400(self):
        headers = b"".join(b"H%d: v\r\n" % i for i in range(100))
        with pytest.raises(ProtocolError) as excinfo:
            parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
        assert excinfo.value.status == 400

    def test_header_float_rejects_garbage(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Deadline-Ms: soon\r\n\r\n")
        with pytest.raises(ProtocolError) as excinfo:
            request.header_float("x-deadline-ms")
        assert excinfo.value.status == 400

    def test_header_float_parses(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Deadline-Ms: 250\r\n\r\n")
        assert request.header_float("x-deadline-ms") == 250.0
        assert request.header_float("missing") is None

    def test_conflicting_content_lengths_are_400_and_close(self):
        # RFC 7230 §3.3.2: differing duplicate Content-Length values make
        # the framing ambiguous — must reject, not let the last one win.
        raw = (
            b"POST / HTTP/1.1\r\n"
            b"Content-Length: 7\r\n"
            b"Content-Length: 3\r\n\r\n"
            b'{"a":1}'
        )
        with pytest.raises(ProtocolError) as excinfo:
            parse(raw)
        assert excinfo.value.status == 400
        assert "Content-Length" in str(excinfo.value)
        assert excinfo.value.close_connection

    def test_identical_duplicate_content_lengths_are_tolerated(self):
        raw = (
            b"POST / HTTP/1.1\r\n"
            b"Content-Length: 7\r\n"
            b"Content-Length: 7\r\n\r\n"
            b'{"a":1}'
        )
        assert parse(raw).body == b'{"a":1}'

    def test_http10_defaults_to_close(self):
        request = parse(b"GET / HTTP/1.0\r\nHost: x\r\n\r\n")
        assert request.version == "HTTP/1.0"
        assert not request.keep_alive

    def test_http10_explicit_keep_alive_is_honoured(self):
        request = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
        assert request.keep_alive

    def test_http11_defaults_to_keep_alive(self):
        assert parse(b"GET / HTTP/1.1\r\n\r\n").version == "HTTP/1.1"
        assert parse(b"GET / HTTP/1.1\r\n\r\n").keep_alive

    def test_keepalive_parses_two_requests_off_one_stream(self):
        async def _run():
            reader = asyncio.StreamReader()
            reader.feed_data(
                b"GET /one HTTP/1.1\r\n\r\nGET /two HTTP/1.1\r\n\r\n"
            )
            reader.feed_eof()
            first = await read_request(reader)
            second = await read_request(reader)
            third = await read_request(reader)
            return first, second, third

        first, second, third = asyncio.run(_run())
        assert first.path == "/one"
        assert second.path == "/two"
        assert third is None


class TestRendering:
    def test_render_response_roundtrip(self):
        wire = render_response(200, b'{"ok":true}', keep_alive=True)
        head, _, body = wire.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 11" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok":true}'

    def test_render_response_close(self):
        wire = render_response(503, b"{}", keep_alive=False)
        assert b"Connection: close" in wire

    def test_extra_headers(self):
        wire = render_response(503, b"{}", extra_headers=(("Retry-After", "2"),))
        assert b"Retry-After: 2\r\n" in wire

    def test_error_body_shape(self):
        import json

        payload = json.loads(error_body(503, "shed", reason="queue_full"))
        assert payload == {"error": "shed", "status": 503, "reason": "queue_full"}

    def test_retry_after_ceils_to_at_least_one_second(self):
        assert retry_after_headers(0.01) == (("Retry-After", "1"),)
        assert retry_after_headers(2.3) == (("Retry-After", "3"),)
