"""Unit tests of the per-release circuit breaker."""

from __future__ import annotations

import pytest

from repro.net.breaker import CLOSED, HALF_OPEN, OPEN, ReleaseBreaker


class Clock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock() -> Clock:
    return Clock()


@pytest.fixture
def breaker(clock) -> ReleaseBreaker:
    return ReleaseBreaker(threshold=3, cooldown_s=10.0, clock=clock)


class TestReleaseBreaker:
    def test_unpinned_requests_are_never_gated(self, breaker):
        for _ in range(10):
            breaker.record_failure(None)
        assert breaker.check(None) is None
        assert breaker.open_releases() == {}

    def test_trips_after_threshold_consecutive_failures(self, breaker):
        for _ in range(2):
            breaker.record_failure("r1")
        assert breaker.check("r1") is None  # still closed at 2 of 3
        breaker.record_failure("r1")
        wait = breaker.check("r1")
        assert wait is not None and wait == pytest.approx(10.0)
        assert "r1" in breaker.open_releases()

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure("r1")
        breaker.record_failure("r1")
        breaker.record_success("r1")
        breaker.record_failure("r1")
        breaker.record_failure("r1")
        assert breaker.check("r1") is None  # never reached 3 consecutive

    def test_cooldown_elapses_into_half_open_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("r1")
        clock.now += 11.0
        assert breaker.check("r1") is None  # the probe is admitted
        # A second concurrent request is still refused while the probe runs.
        assert breaker.check("r1") is not None

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("r1")
        clock.now += 11.0
        assert breaker.check("r1") is None
        breaker.record_success("r1")
        assert breaker.check("r1") is None
        assert breaker.stats()["states"] == {}

    def test_probe_failure_reopens_for_another_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure("r1")
        clock.now += 11.0
        assert breaker.check("r1") is None
        breaker.record_failure("r1")
        wait = breaker.check("r1")
        assert wait is not None and wait == pytest.approx(10.0)
        assert breaker.stats()["trips"] == 2

    def test_is_probe_identifies_the_half_open_probe(self, breaker, clock):
        assert breaker.is_probe("r1") is False  # no breaker yet
        for _ in range(3):
            breaker.record_failure("r1")
        assert breaker.is_probe("r1") is False  # open, not probing
        clock.now += 11.0
        assert breaker.check("r1") is None
        assert breaker.is_probe("r1") is True
        assert breaker.is_probe(None) is False

    def test_aborted_probe_frees_the_slot_instead_of_wedging(self, breaker, clock):
        # Regression: a probe that exited without a verdict (shed, 504,
        # transient 500) used to leave probing=True forever, refusing every
        # later pinned request with no way to ever clear the breaker.
        for _ in range(3):
            breaker.record_failure("r1")
        clock.now += 11.0
        assert breaker.check("r1") is None  # the probe is admitted
        assert breaker.check("r1") is not None  # slot held while it runs
        breaker.probe_aborted("r1")
        assert breaker.check("r1") is None  # the next request probes
        breaker.record_success("r1")
        assert breaker.check("r1") is None
        assert breaker.stats()["states"] == {}

    def test_probe_aborted_is_a_noop_outside_half_open(self, breaker, clock):
        breaker.probe_aborted("missing")  # unknown release: no-op
        breaker.probe_aborted(None)
        for _ in range(3):
            breaker.record_failure("r1")
        breaker.probe_aborted("r1")  # open, cooldown running: no-op
        wait = breaker.check("r1")
        assert wait is not None and wait == pytest.approx(10.0)

    def test_releases_are_independent(self, breaker):
        for _ in range(3):
            breaker.record_failure("r1")
        assert breaker.check("r1") is not None
        assert breaker.check("r2") is None

    def test_stats_shape(self, breaker):
        breaker.record_failure("r1")
        stats = breaker.stats()
        assert stats["threshold"] == 3
        assert stats["states"]["r1"] == {"state": CLOSED, "failures": 1}
        for _ in range(2):
            breaker.record_failure("r1")
        assert breaker.stats()["states"]["r1"]["state"] == OPEN

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            ReleaseBreaker(threshold=0)
        with pytest.raises(ValueError):
            ReleaseBreaker(cooldown_s=0)
