"""HTTP answers are byte-for-byte the in-process answers (hypothesis).

The server and the tests share one canonical JSON encoder
(:func:`repro.net.protocol.encode_canonical`), so equality here is byte
equality of response bodies — values, masks, error bars, provenance flags
and all.  A *reference* :class:`QueryService` over the same store receives
the identical call sequence the server's service does, which keeps both
answer caches in lockstep and makes even the ``cached`` flag comparable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net.protocol import answer_payload, encode_canonical
from repro.net.server import BackgroundServer, ServerConfig
from repro.serving.service import QueryRequest, QueryService
from repro.serving.store import ReleaseStore

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        # One server (and its paired reference service) deliberately serves
        # every example: both sides see the identical call sequence, so
        # their cache states evolve in lockstep.
        HealthCheck.function_scoped_fixture,
    ],
)

NAMES = ["a", "b", "c", "d", "e"]

# Queries a 2-way release can always answer: one or two free attributes,
# optionally pinning one *other* attribute (total involved bits <= 2).
query_objects = st.one_of(
    # 1- or 2-way marginal, no predicate.
    st.lists(st.sampled_from(NAMES), min_size=1, max_size=2, unique=True).map(
        lambda attrs: {"attributes": attrs}
    ),
    # 1-way marginal with one other attribute fixed.
    st.tuples(
        st.sampled_from(NAMES), st.sampled_from(NAMES), st.integers(0, 1)
    )
    .filter(lambda t: t[0] != t[1])
    .map(lambda t: {"attributes": [t[0]], "where": {t[1]: t[2]}}),
    # Total count with one attribute fixed (a point/slice query).
    st.tuples(st.sampled_from(NAMES), st.integers(0, 1)).map(
        lambda t: {"attributes": [], "where": {t[0]: t[1]}}
    ),
)


def to_request(obj: dict) -> QueryRequest:
    return QueryRequest(
        attributes=tuple(obj["attributes"]) if obj.get("attributes") is not None else None,
        where=obj.get("where"),
    )


@pytest.fixture
def paired(service, store, client_factory):
    """The HTTP server plus a reference service fed the same sequence."""
    reference = QueryService(store)
    config = ServerConfig(port=0, batch_window_ms=0.0)
    with BackgroundServer(service, config) as background:
        yield client_factory(background.address), reference


class TestEquivalence:
    @SETTINGS
    @given(batch=st.lists(query_objects, min_size=1, max_size=8))
    def test_batch_bodies_match_in_process_byte_for_byte(self, paired, batch):
        client, reference = paired
        status, _, body = client.post_json("/v1/query/batch", batch)
        assert status == 200
        expected = encode_canonical(
            [
                answer_payload(answer)
                for answer in reference.query_batch(
                    [to_request(obj) for obj in batch]
                )
            ]
        )
        assert body == expected

    @SETTINGS
    @given(query=query_objects)
    def test_single_bodies_match_in_process_byte_for_byte(self, paired, query):
        client, reference = paired
        status, _, body = client.post_json("/v1/query", query)
        assert status == 200
        # The server answers singles through the (grouped) batch path; the
        # grouped path is bitwise identical to the serial one, so comparing
        # against reference.query() also checks that contract end to end.
        expected = encode_canonical(
            answer_payload(
                reference.query(
                    query.get("attributes"), where=query.get("where") or None
                )
            )
        )
        assert body == expected


class TestDegradedEquivalence:
    @pytest.fixture
    def corrupt_store_dir(self, tmp_path, release) -> Path:
        """A v2 store whose 'a'-serving cuboid was corrupted in place."""
        root = tmp_path / "cstore"
        store = ReleaseStore(root, store_format="v2")
        rid = store.put(release)
        probe = QueryService(ReleaseStore(root, create=False))
        answer = probe.query(["a"])
        target = (
            Path(root) / rid / "marginals"
            / f"marginal_{answer.plan.source_position:05d}.npy"
        )
        bad = np.asarray(
            release.marginals[answer.plan.source_position], dtype=np.float64
        ).copy()
        bad[0] += 1.0
        np.save(target, bad)
        return root

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_degraded_answers_match_in_process(
        self, corrupt_store_dir, client_factory
    ):
        service = QueryService(ReleaseStore(corrupt_store_dir, create=False))
        reference = QueryService(ReleaseStore(corrupt_store_dir, create=False))
        config = ServerConfig(port=0, batch_window_ms=0.0)
        queries = [
            {"attributes": ["a"]},          # quarantines, then degrades
            {"attributes": ["a"]},          # degraded again (memoised route)
            {"attributes": ["b", "c"]},     # healthy cuboid, unaffected
            {"attributes": ["a"], "where": {"c": 1}},
        ]
        with BackgroundServer(service, config) as background:
            client = client_factory(background.address)
            for query in queries:
                status, _, body = client.post_json("/v1/query", query)
                assert status == 200
                expected = encode_canonical(
                    answer_payload(
                        reference.query(
                            query["attributes"], where=query.get("where")
                        )
                    )
                )
                assert body == expected
        # Both sides independently quarantined the same cuboid.
        assert service.health()["quarantined"] == reference.health()["quarantined"]
        assert service.health()["ok"] is False
