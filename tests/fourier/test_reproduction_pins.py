"""Seeded end-to-end reproduction pins across the Fourier kernel rewrite.

Every fingerprint below was captured on the *pre-index* scalar
implementation (the Python block-loop butterfly + dict-based consistency).
The batched kernels must keep producing bit-for-bit identical releases and
projections: a pin failure means the rewrite changed the floating-point
operation order somewhere, which silently breaks every stored seeded release.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.domain.schema import Schema
from repro.queries import all_k_way
from repro.queries.marginal import MarginalQuery
from repro.queries.workload import MarginalWorkload
from repro.recovery.consistency import fourier_consistency, fourier_consistency_lp


def fingerprint(marginals) -> str:
    digest = hashlib.sha256()
    for marginal in marginals:
        digest.update(
            np.ascontiguousarray(np.asarray(marginal, dtype=np.float64)).tobytes()
        )
    return digest.hexdigest()


@pytest.fixture(scope="module")
def schema_8():
    return Schema.binary([f"a{i}" for i in range(8)])


@pytest.fixture(scope="module")
def mixed_workload():
    schema = Schema.binary([f"a{i}" for i in range(6)])
    masks = [0b111, 0b1, 0b110000, 0b0, 0b101010, 0b11, 0b111000]
    return MarginalWorkload(
        schema, [MarginalQuery(mask, 6) for mask in masks], name="mixed"
    )


@pytest.fixture(scope="module")
def mixed_noisy(mixed_workload):
    x = np.random.default_rng(5).poisson(
        30.0, mixed_workload.domain_size
    ).astype(np.float64)
    rng = np.random.default_rng(9)
    return [
        truth + rng.laplace(scale=2.0, size=truth.shape)
        for truth in mixed_workload.true_answers(x)
    ]


class TestSeededReleasePins:
    """End-to-end releases: plan -> execute -> estimate -> consistency."""

    EXPECTED = {
        "F": "ad80c8ccef11396576c6fd7b01fbe7eeb3af4ec7361b674fd453760b149f7c03",
        "Q": "de6006c4663189969f7a445b24ecf3d6277aeaa8d554c5e7fd04f113a1240d37",
        "C": "207fe9690ff24d907815a5fda1fa8868bc7cb6df3db436c3c56b85eedf2f5ac4",
    }

    @pytest.mark.parametrize("strategy", sorted(EXPECTED))
    def test_release_reproduces_pre_rewrite_bits(self, schema_8, strategy):
        counts = np.random.default_rng(7).poisson(
            25.0, schema_8.domain_size
        ).astype(np.float64)
        workload = all_k_way(schema_8, 2)
        release = release_marginals(
            counts, workload, budget=0.8, strategy=strategy, rng=42
        )
        assert fingerprint(release.marginals) == self.EXPECTED[strategy]

    def test_release_is_deterministic_for_equal_seeds(self, schema_8):
        counts = np.random.default_rng(7).poisson(
            25.0, schema_8.domain_size
        ).astype(np.float64)
        workload = all_k_way(schema_8, 2)
        first = release_marginals(counts, workload, budget=0.8, strategy="Q", rng=13)
        second = release_marginals(counts, workload, budget=0.8, strategy="Q", rng=13)
        for a, b in zip(first.marginals, second.marginals):
            assert np.array_equal(a, b)


class TestConsistencyPins:
    """The projection itself, on a mixed-order (0/1/2/3-way) workload."""

    def test_l2_uniform(self, mixed_workload, mixed_noisy):
        result = fourier_consistency(mixed_workload, mixed_noisy)
        assert (
            fingerprint(result.marginals)
            == "bec498ed3da1b97f27f06a0ec437c892916ddc936201f88581331392d02814b6"
        )
        assert repr(result.residual) == repr(16.008547048936226)

    def test_l2_weighted(self, mixed_workload, mixed_noisy):
        weights = [0.5, 2.0, 1.0, 0.0, 3.0, 1.5, 0.25]
        result = fourier_consistency(
            mixed_workload, mixed_noisy, query_weights=weights
        )
        assert (
            fingerprint(result.marginals)
            == "5c7cd56daefc82f4324806d6a1653800790d6c76a465de69e8d5a363893138c9"
        )

    def test_lp_l1(self, mixed_workload, mixed_noisy):
        result = fourier_consistency_lp(mixed_workload, mixed_noisy, norm=1)
        assert (
            fingerprint(result.marginals)
            == "40de517d3a8b72dec3ef22c32d8f99a8db5b4536b358364a6ca8512dc082bae8"
        )
