"""Tests for ``WorkloadFourierIndex`` and the vectorized bit-projection helpers.

The consistency reference below is a verbatim copy of the pre-index
``fourier_consistency`` hot loop (dict accumulation, per-beta Python); the
indexed implementation must reproduce its coefficients and marginals
**bitwise** for arbitrary workloads, including mixed-order ones where the
batched path regroups queries by order.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.domain.schema import Schema
from repro.fourier import (
    WorkloadFourierIndex,
    expand_indices,
    project_indices,
    submasks_array,
)
from repro.queries.marginal import MarginalQuery
from repro.queries.workload import MarginalWorkload
from repro.recovery.consistency import fourier_consistency
from repro.utils.bits import hamming_weight, iter_submasks, project_index

from tests.fourier.test_kernels import reference_unnormalised_fwht_inplace


# --------------------------------------------------------------------------- #
# reference: the historical scalar consistency projection (pre-PR, verbatim)
# --------------------------------------------------------------------------- #
def reference_fourier_consistency_coefficients(
    workload, estimates, weights
) -> Dict[int, float]:
    d = workload.dimension
    numerator: Dict[int, float] = {}
    denominator: Dict[int, float] = {}
    for query, estimate, weight in zip(workload.queries, estimates, weights):
        if weight == 0.0:
            continue
        k = query.order
        local = np.array(estimate, dtype=np.float64, copy=True)
        reference_unnormalised_fwht_inplace(local)
        block_weight = weight * (2.0 ** (d - k))
        coefficient_scale = 2.0 ** (-d / 2.0)
        for beta in query.fourier_support():
            compact = project_index(beta, query.mask)
            per_query_coefficient = coefficient_scale * local[compact]
            numerator[beta] = numerator.get(beta, 0.0) + block_weight * per_query_coefficient
            denominator[beta] = denominator.get(beta, 0.0) + block_weight
    return {beta: numerator[beta] / denominator[beta] for beta in numerator}


def reference_marginal_from_fourier(coefficients, mask: int, d: int) -> np.ndarray:
    bits = [b for b in range(d) if (mask >> b) & 1]
    k = len(bits)
    local = np.zeros(1 << k, dtype=np.float64)
    for beta in iter_submasks(mask):
        local[project_index(beta, mask)] = coefficients[beta]
    reference_unnormalised_fwht_inplace(local)
    return local * (2.0 ** (d / 2.0 - k))


# --------------------------------------------------------------------------- #
# hypothesis machinery
# --------------------------------------------------------------------------- #
@st.composite
def workloads_with_estimates(draw):
    d = draw(st.integers(2, 5))
    n_queries = draw(st.integers(1, min(6, (1 << d) - 1)))
    masks = draw(
        st.lists(
            st.integers(0, (1 << d) - 1), min_size=n_queries, max_size=n_queries,
            unique=True,
        )
    )
    schema = Schema.binary([f"a{i}" for i in range(d)])
    workload = MarginalWorkload(
        schema, [MarginalQuery(mask, d) for mask in masks], name="hyp"
    )
    estimates = []
    for query in workload.queries:
        values = draw(
            st.lists(
                st.floats(
                    min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False,
                ),
                min_size=query.size, max_size=query.size,
            )
        )
        estimates.append(np.array(values, dtype=np.float64))
    weights = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                min_size=len(workload), max_size=len(workload),
            ).filter(lambda w: any(value > 0 for value in w)),
        )
    )
    return workload, estimates, weights


class TestProjectionHelpers:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_project_indices_matches_scalar(self, mask, index):
        expected = project_index(index, mask)
        actual = project_indices(np.array([index]), mask)
        assert actual[0] == expected

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 255))
    def test_expand_inverts_project_on_submasks(self, mask):
        betas = submasks_array(mask)
        assert np.array_equal(project_indices(betas, mask), np.arange(betas.shape[0]))
        assert np.array_equal(expand_indices(project_indices(betas, mask), mask), betas)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 1023))
    def test_submasks_array_matches_iter_submasks(self, mask):
        betas = submasks_array(mask)
        assert betas.shape[0] == 1 << hamming_weight(mask)
        assert set(betas.tolist()) == set(iter_submasks(mask))
        # compact ordering: entry c restricted to mask spells c
        for compact, beta in enumerate(betas.tolist()):
            assert project_index(beta, mask) == compact


class TestWorkloadFourierIndex:
    def test_coefficient_masks_match_workload_support(self, workload_2way_5):
        index = WorkloadFourierIndex.for_workload(workload_2way_5)
        assert index.coefficient_masks.tolist() == list(workload_2way_5.fourier_masks())
        assert index.coefficient_count == len(workload_2way_5.fourier_masks())
        assert index.total_cells == workload_2way_5.total_cells

    def test_index_is_cached_per_workload_signature(self, workload_2way_5):
        first = WorkloadFourierIndex.for_workload(workload_2way_5)
        second = WorkloadFourierIndex.for_workload(workload_2way_5)
        assert first is second

    def test_slots_map_compact_positions_to_sorted_masks(self, workload_2way_5):
        index = WorkloadFourierIndex.for_workload(workload_2way_5)
        for position, query in enumerate(workload_2way_5.queries):
            slots = index.slots_for(position)
            betas = index.coefficient_masks[slots]
            assert np.array_equal(betas, submasks_array(query.mask))

    def test_mapping_round_trip(self, workload_2way_5):
        index = WorkloadFourierIndex.for_workload(workload_2way_5)
        rng = np.random.default_rng(0)
        array = rng.normal(size=index.coefficient_count)
        mapping = index.coefficients_dict(array)
        assert np.array_equal(index.coefficient_array_from_mapping(mapping), array)
        with pytest.raises(KeyError):
            index.coefficient_array_from_mapping({})

    @settings(max_examples=60, deadline=None)
    @given(workloads_with_estimates())
    def test_consistency_bitwise_equals_scalar_reference(self, case):
        workload, estimates, weights = case
        resolved = (
            np.ones(len(workload)) if weights is None else np.asarray(weights, dtype=float)
        )
        expected_coefficients = reference_fourier_consistency_coefficients(
            workload, estimates, resolved
        )
        needed = {
            beta for query in workload.queries for beta in iter_submasks(query.mask)
        }
        if not needed <= set(expected_coefficients):
            # Zero-weight queries left some required coefficient unfitted: the
            # scalar reconstruction raised KeyError, and so must the indexed one.
            with pytest.raises(KeyError, match="missing Fourier coefficient"):
                fourier_consistency(workload, estimates, query_weights=weights)
            return
        result = fourier_consistency(workload, estimates, query_weights=weights)
        assert set(result.coefficients) == set(expected_coefficients)
        for beta, value in expected_coefficients.items():
            # bitwise: the indexed scatter must reproduce the dict accumulation
            assert np.float64(value) == np.float64(result.coefficients[beta]) or (
                np.isnan(value) and np.isnan(result.coefficients[beta])
            )
        d = workload.dimension
        for query, marginal in zip(workload.queries, result.marginals):
            expected = reference_marginal_from_fourier(
                expected_coefficients, query.mask, d
            )
            assert np.array_equal(expected, np.asarray(marginal))

    def test_marginals_from_coefficients_bitwise_equals_scalar(self, workload_2way_5):
        index = WorkloadFourierIndex.for_workload(workload_2way_5)
        rng = np.random.default_rng(7)
        array = rng.normal(size=index.coefficient_count)
        mapping = index.coefficients_dict(array)
        d = workload_2way_5.dimension
        marginals = index.marginals_from_coefficients(array)
        for query, marginal in zip(workload_2way_5.queries, marginals):
            expected = reference_marginal_from_fourier(mapping, query.mask, d)
            assert np.array_equal(expected, marginal)

    def test_uncovered_coefficient_raises_keyerror_like_scalar(self):
        schema = Schema.binary(["a", "b", "c"])
        workload = MarginalWorkload(
            schema, [MarginalQuery(0b011, 3), MarginalQuery(0b101, 3)], name="w"
        )
        estimates = [np.ones(4), np.ones(4)]
        # Weight 0 on the second query: its exclusive coefficients (0b100,
        # 0b101) are never fitted, so reconstructing it must raise KeyError —
        # exactly like the scalar dict-based implementation did.
        with pytest.raises(KeyError, match="missing Fourier coefficient"):
            fourier_consistency(workload, estimates, query_weights=[1.0, 0.0])
