"""Bitwise-equivalence tests for the vectorized FWHT kernels.

The reference implementations below are verbatim copies of the pre-index
scalar code (the Python block-loop butterfly and the dict-based consistency
projection lived in ``repro.transforms.hadamard`` / ``repro.recovery``).
The vectorized kernels must reproduce them **bitwise** — ``==``, not
``allclose`` — because seeded releases are pinned across the rewrite.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fourier import fwht, fwht_batch, fwht_inplace, inverse_fwht


# --------------------------------------------------------------------------- #
# reference: the historical scalar butterfly (pre-PR implementation, verbatim)
# --------------------------------------------------------------------------- #
def reference_unnormalised_fwht_inplace(values: np.ndarray) -> None:
    n = values.shape[0]
    h = 1
    while h < n:
        for start in range(0, n, 2 * h):
            left = values[start : start + h]
            right = values[start + h : start + 2 * h]
            upper = left + right
            lower = left - right
            values[start : start + h] = upper
            values[start + h : start + 2 * h] = lower
        h *= 2


def reference_fwht(x: np.ndarray) -> np.ndarray:
    values = np.array(x, dtype=np.float64, copy=True)
    reference_unnormalised_fwht_inplace(values)
    values /= np.sqrt(values.shape[0])
    return values


finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


def vectors(length: int):
    return st.lists(finite_floats, min_size=length, max_size=length)


class TestFwhtBitwise:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 7), st.data())
    def test_matches_scalar_reference_bitwise(self, log_n, data):
        n = 1 << log_n
        x = np.array(data.draw(vectors(n)), dtype=np.float64)
        expected = reference_fwht(x)
        actual = fwht(x)
        assert np.array_equal(expected, actual)  # bitwise, no tolerance

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 7), st.data())
    def test_inplace_matches_scalar_reference_bitwise(self, log_n, data):
        n = 1 << log_n
        x = np.array(data.draw(vectors(n)), dtype=np.float64)
        expected = x.copy()
        reference_unnormalised_fwht_inplace(expected)
        actual = x.copy()
        fwht_inplace(actual)
        assert np.array_equal(expected, actual)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fwht(np.zeros(6))
        with pytest.raises(ValueError):
            fwht(np.zeros(0))
        with pytest.raises(ValueError):
            fwht_inplace(np.zeros(12))

    def test_rejects_non_contiguous(self):
        values = np.zeros((4, 8))[:, ::2]
        with pytest.raises(ValueError):
            fwht_inplace(values)

    def test_involution(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=64)
        assert np.allclose(inverse_fwht(fwht(x)), x)


class TestFwhtBatch:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 6), st.integers(0, 6), st.data())
    def test_rows_match_single_transforms_bitwise(self, m, log_n, data):
        n = 1 << log_n
        rows = np.array(
            [data.draw(vectors(n)) for _ in range(m)], dtype=np.float64
        ).reshape(m, n)
        batched = fwht_batch(rows)
        for i in range(m):
            assert np.array_equal(batched[i], reference_fwht(rows[i]))

    def test_does_not_modify_input(self):
        rows = np.arange(12.0).reshape(3, 4)
        copy = rows.copy()
        fwht_batch(rows)
        assert np.array_equal(rows, copy)

    def test_empty_batch(self):
        out = fwht_batch(np.empty((0, 8)))
        assert out.shape == (0, 8)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            fwht_batch(np.zeros(8))
        with pytest.raises(ValueError):
            fwht_batch(np.zeros((3, 6)))

    def test_inplace_batched_matches_per_row(self):
        rng = np.random.default_rng(11)
        rows = rng.normal(size=(7, 16))
        batched = np.array(rows, order="C")
        fwht_inplace(batched)
        for i in range(rows.shape[0]):
            expected = rows[i].copy()
            reference_unnormalised_fwht_inplace(expected)
            assert np.array_equal(batched[i], expected)
