"""Tests for the dyadic hierarchical decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.budget.grouping import satisfies_grouping_property
from repro.transforms.hierarchical import (
    hierarchical_levels,
    hierarchical_matrix,
    hierarchical_transform,
)


class TestMatrix:
    def test_shape(self):
        matrix = hierarchical_matrix(8)
        assert matrix.shape == (1 + 2 + 4 + 8, 8)

    def test_without_leaves(self):
        matrix = hierarchical_matrix(8, include_leaves=False)
        assert matrix.shape == (7, 8)

    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            hierarchical_matrix(6)

    def test_root_row_is_all_ones(self):
        matrix = hierarchical_matrix(16)
        assert np.array_equal(matrix[0], np.ones(16))

    def test_entries_are_binary(self):
        matrix = hierarchical_matrix(8)
        assert set(np.unique(matrix)) <= {0.0, 1.0}

    def test_each_level_partitions_domain(self):
        matrix = hierarchical_matrix(16)
        for rows in hierarchical_levels(16):
            assert np.array_equal(matrix[rows].sum(axis=0), np.ones(16))

    def test_column_l1_norm_is_depth(self):
        """Every column is covered once per level, so the L1 sensitivity of the
        hierarchy is its depth — the fact the paper's grouping argument uses."""
        matrix = hierarchical_matrix(16)
        assert np.array_equal(np.abs(matrix).sum(axis=0), np.full(16, 5.0))


class TestTransform:
    def test_matches_matrix(self, random_counts_5):
        matrix = hierarchical_matrix(32)
        assert np.allclose(hierarchical_transform(random_counts_5), matrix @ random_counts_5)

    def test_without_leaves_matches_matrix(self, random_counts_5):
        matrix = hierarchical_matrix(32, include_leaves=False)
        assert np.allclose(
            hierarchical_transform(random_counts_5, include_leaves=False),
            matrix @ random_counts_5,
        )

    def test_root_is_total(self, random_counts_5):
        assert hierarchical_transform(random_counts_5)[0] == pytest.approx(random_counts_5.sum())


class TestGrouping:
    def test_group_count_is_depth(self):
        """The paper: the binary-tree hierarchy has grouping number log2(N) (+1 with leaves)."""
        assert len(hierarchical_levels(16)) == 5
        assert len(hierarchical_levels(16, include_leaves=False)) == 4

    def test_levels_partition_rows(self):
        levels = hierarchical_levels(8)
        rows = sorted(r for level in levels for r in level)
        assert rows == list(range(15))

    def test_levels_satisfy_definition_3_1(self):
        matrix = hierarchical_matrix(16)
        assert satisfies_grouping_property(matrix, hierarchical_levels(16))

    def test_greedy_grouping_finds_depth_groups(self):
        from repro.budget.grouping import greedy_grouping

        matrix = hierarchical_matrix(16)
        groups = greedy_grouping(matrix)
        assert len(groups) == len(hierarchical_levels(16))
