"""Tests for the Haar wavelet transform."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.budget.grouping import satisfies_grouping_property
from repro.transforms.wavelet import (
    haar_groups,
    haar_level_of_row,
    haar_matrix,
    haar_transform,
    inverse_haar_transform,
)

vectors = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False),
    min_size=16,
    max_size=16,
)


class TestTransform:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            haar_transform(np.zeros(6))

    def test_round_trip(self, random_counts_5):
        assert np.allclose(inverse_haar_transform(haar_transform(random_counts_5)), random_counts_5)

    def test_orthonormal_preserves_norm(self, random_counts_5):
        assert np.linalg.norm(haar_transform(random_counts_5)) == pytest.approx(
            np.linalg.norm(random_counts_5)
        )

    def test_first_coefficient_is_scaled_total(self, random_counts_5):
        coefficients = haar_transform(random_counts_5)
        assert coefficients[0] == pytest.approx(random_counts_5.sum() / np.sqrt(32))

    def test_constant_vector_has_single_coefficient(self):
        coefficients = haar_transform(np.full(8, 3.0))
        assert coefficients[0] == pytest.approx(3.0 * 8 / np.sqrt(8))
        assert np.allclose(coefficients[1:], 0.0)

    @settings(max_examples=30, deadline=None)
    @given(vectors)
    def test_round_trip_property(self, data):
        x = np.array(data)
        assert np.allclose(inverse_haar_transform(haar_transform(x)), x, atol=1e-8)


class TestMatrix:
    def test_matches_transform(self, random_counts_5):
        matrix = haar_matrix(32)
        assert np.allclose(matrix @ random_counts_5, haar_transform(random_counts_5))

    def test_orthonormal(self):
        matrix = haar_matrix(16)
        assert np.allclose(matrix @ matrix.T, np.eye(16), atol=1e-10)

    def test_levels_have_uniform_magnitude(self):
        matrix = haar_matrix(16)
        for level, rows in enumerate(haar_groups(16)):
            block = matrix[rows]
            magnitudes = np.abs(block[np.abs(block) > 1e-12])
            assert np.allclose(magnitudes, magnitudes[0])


class TestGrouping:
    def test_level_of_row(self):
        assert haar_level_of_row(0, 16) == 0
        assert haar_level_of_row(1, 16) == 1
        assert haar_level_of_row(2, 16) == 2
        assert haar_level_of_row(3, 16) == 2
        assert haar_level_of_row(8, 16) == 4
        assert haar_level_of_row(15, 16) == 4

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            haar_level_of_row(16, 16)
        with pytest.raises(ValueError):
            haar_level_of_row(-1, 16)

    def test_group_count_matches_paper(self):
        """The paper: the 1-D Haar wavelet has grouping number log2(N) + 1."""
        for n in (8, 16, 32):
            assert len(haar_groups(n)) == int(np.log2(n)) + 1

    def test_groups_partition_rows(self):
        groups = haar_groups(32)
        rows = sorted(r for group in groups for r in group)
        assert rows == list(range(32))

    def test_groups_satisfy_definition_3_1(self):
        matrix = haar_matrix(16)
        assert satisfies_grouping_property(matrix, haar_groups(16))

    def test_groups_match_level_of_row(self):
        for level, rows in enumerate(haar_groups(16)):
            assert all(haar_level_of_row(r, 16) == level for r in rows)
