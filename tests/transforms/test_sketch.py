"""Tests for sparse random projection (sketch) strategy matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.budget.grouping import greedy_grouping, satisfies_grouping_property
from repro.exceptions import DomainSizeError
from repro.transforms.sketch import sketch_groups, sketch_matrix, sketch_with_totals


class TestSketchMatrix:
    def test_shape(self):
        matrix = sketch_matrix(32, width=4, repetitions=3, rng=0)
        assert matrix.shape == (12, 32)

    def test_entries_are_signs(self):
        matrix = sketch_matrix(32, width=4, repetitions=2, rng=1)
        assert set(np.unique(matrix)) <= {-1.0, 0.0, 1.0}

    def test_unsigned_variant(self):
        matrix = sketch_matrix(16, width=4, repetitions=2, signed=False, rng=2)
        assert set(np.unique(matrix)) <= {0.0, 1.0}

    def test_each_repetition_partitions_columns(self):
        matrix = sketch_matrix(64, width=8, repetitions=4, rng=3)
        for rows in sketch_groups(8, 4):
            assert np.array_equal(np.abs(matrix[rows]).sum(axis=0), np.ones(64))

    def test_reproducible(self):
        a = sketch_matrix(32, width=4, repetitions=2, rng=7)
        b = sketch_matrix(32, width=4, repetitions=2, rng=7)
        assert np.array_equal(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            sketch_matrix(0, width=2, repetitions=1)
        with pytest.raises(ValueError):
            sketch_matrix(8, width=16, repetitions=1)
        with pytest.raises(ValueError):
            sketch_matrix(8, width=2, repetitions=0)
        with pytest.raises(DomainSizeError):
            sketch_matrix(1 << 22, width=2, repetitions=1)


class TestGrouping:
    def test_grouping_number_is_repetitions(self):
        """The paper: for sketches the grouping number is the number of
        repetitions t and every group constant is 1."""
        matrix = sketch_matrix(64, width=8, repetitions=5, rng=0)
        groups = sketch_groups(8, 5)
        assert len(groups) == 5
        assert satisfies_grouping_property(matrix, groups)

    def test_greedy_grouping_not_larger_than_repetitions(self):
        matrix = sketch_matrix(32, width=4, repetitions=3, rng=1)
        assert len(greedy_grouping(matrix)) <= 3 * 4  # never worse than singletons
        # The declared per-repetition grouping is always valid even when the
        # greedy heuristic finds a different partition.
        assert satisfies_grouping_property(matrix, sketch_groups(4, 3))

    def test_sensitivity_equals_repetitions(self):
        matrix = sketch_matrix(128, width=16, repetitions=4, rng=2)
        assert np.abs(matrix).sum(axis=0).max() == 4.0


class TestSketchWithTotals:
    def test_supports_marginal_release_via_explicit_strategy(self, binary_schema_5, random_counts_5):
        from repro.budget.allocation import optimal_allocation
        from repro.mechanisms import PrivacyBudget
        from repro.queries import all_k_way
        from repro.strategies import ExplicitMatrixStrategy

        matrix, groups = sketch_with_totals(32, width=8, repetitions=2, rng=4)
        workload = all_k_way(binary_schema_5, 1)
        strategy = ExplicitMatrixStrategy(workload, matrix, name="sketch+identity")
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(20000.0))
        estimates = strategy.estimate(strategy.measure(random_counts_5, allocation, rng=0))
        for estimate, truth in zip(estimates, workload.true_answers(random_counts_5)):
            assert np.allclose(estimate, truth, atol=1.0)

    def test_groups_partition_all_rows(self):
        matrix, groups = sketch_with_totals(16, width=4, repetitions=3, rng=5)
        rows = sorted(r for group in groups for r in group)
        assert rows == list(range(matrix.shape[0]))
        assert satisfies_grouping_property(matrix, groups)
