"""Tests for the Walsh–Hadamard (Fourier) transform machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.queries import all_k_way
from repro.transforms.hadamard import (
    fourier_coefficient,
    fourier_coefficients_for_mask,
    fourier_coefficients_for_masks,
    fwht,
    inverse_fwht,
    marginal_from_fourier,
)
from repro.domain.contingency import marginal_from_vector
from repro.utils.bits import hamming_weight, parity

vectors_16 = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False),
    min_size=16,
    max_size=16,
)


class TestFwht:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            fwht(np.zeros(6))
        with pytest.raises(ValueError):
            fwht(np.zeros(0))

    def test_involution(self, random_counts_5):
        assert np.allclose(fwht(fwht(random_counts_5)), random_counts_5)

    def test_inverse_is_forward(self, random_counts_5):
        assert np.allclose(inverse_fwht(fwht(random_counts_5)), random_counts_5)

    def test_parseval(self, random_counts_5):
        assert np.linalg.norm(fwht(random_counts_5)) == pytest.approx(
            np.linalg.norm(random_counts_5)
        )

    def test_does_not_modify_input(self, random_counts_5):
        copy = random_counts_5.copy()
        fwht(random_counts_5)
        assert np.array_equal(copy, random_counts_5)

    def test_matches_definition_small(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=8)
        coefficients = fwht(x)
        for alpha in range(8):
            expected = sum(
                ((-1) ** parity(alpha & beta)) * x[beta] for beta in range(8)
            ) / np.sqrt(8)
            assert coefficients[alpha] == pytest.approx(expected)

    def test_zero_coefficient_is_scaled_total(self, random_counts_5):
        coefficients = fwht(random_counts_5)
        assert coefficients[0] == pytest.approx(random_counts_5.sum() / np.sqrt(32))

    @settings(max_examples=30, deadline=None)
    @given(vectors_16)
    def test_involution_property(self, data):
        x = np.array(data)
        assert np.allclose(fwht(fwht(x)), x, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(vectors_16, vectors_16)
    def test_linearity(self, a, b):
        a, b = np.array(a), np.array(b)
        assert np.allclose(fwht(2.0 * a + 3.0 * b), 2.0 * fwht(a) + 3.0 * fwht(b), atol=1e-8)


class TestSingleCoefficients:
    def test_matches_full_transform(self, random_counts_5):
        full = fwht(random_counts_5)
        for mask in [0, 1, 0b101, 0b11111, 0b01010]:
            assert fourier_coefficient(random_counts_5, mask) == pytest.approx(full[mask])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fourier_coefficient(np.zeros(6), 0)
        with pytest.raises(ValueError):
            fourier_coefficient(np.zeros(8), 9)


class TestCoefficientsForMask:
    def test_matches_full_transform(self, random_counts_5):
        full = fwht(random_counts_5)
        coefficients = fourier_coefficients_for_mask(random_counts_5, 0b10110, 5)
        assert len(coefficients) == 8
        for beta, value in coefficients.items():
            assert beta & 0b10110 == beta
            assert value == pytest.approx(full[beta])

    def test_requires_matching_length(self):
        with pytest.raises(ValueError):
            fourier_coefficients_for_mask(np.zeros(8), 1, 4)

    def test_masks_collection(self, random_counts_5, binary_schema_5):
        workload = all_k_way(binary_schema_5, 2)
        full = fwht(random_counts_5)
        coefficients = fourier_coefficients_for_masks(random_counts_5, workload.masks, 5)
        assert set(coefficients) == set(workload.fourier_masks())
        for beta, value in coefficients.items():
            assert value == pytest.approx(full[beta])


class TestMarginalFromFourier:
    def test_exact_round_trip(self, random_counts_5):
        d = 5
        for mask in [0b00001, 0b01101, 0b11111, 0b00000]:
            coefficients = fourier_coefficients_for_mask(random_counts_5, mask, d)
            reconstructed = marginal_from_fourier(coefficients, mask, d)
            assert np.allclose(reconstructed, marginal_from_vector(random_counts_5, mask, d))

    def test_missing_coefficient_raises(self):
        with pytest.raises(KeyError):
            marginal_from_fourier({0: 1.0}, 0b11, 3)

    def test_extra_coefficients_ignored(self, random_counts_5):
        d = 5
        coefficients = fourier_coefficients_for_masks(random_counts_5, [0b11111], d)
        reconstructed = marginal_from_fourier(coefficients, 0b00011, d)
        assert np.allclose(reconstructed, marginal_from_vector(random_counts_5, 0b00011, d))

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.lists(st.integers(0, 30), min_size=16, max_size=16),
        mask=st.integers(0, 15),
    )
    def test_round_trip_property(self, data, mask):
        x = np.array(data, dtype=float)
        coefficients = fourier_coefficients_for_mask(x, mask, 4)
        assert np.allclose(
            marginal_from_fourier(coefficients, mask, 4), marginal_from_vector(x, mask, 4)
        )

    def test_theorem_41_marginal_depends_only_on_dominated_coefficients(self, random_counts_5):
        """Zeroing coefficients outside the dominated set does not change the marginal."""
        d = 5
        mask = 0b00110
        full = fwht(random_counts_5)
        truncated = np.zeros_like(full)
        for beta in range(32):
            if beta & mask == beta:
                truncated[beta] = full[beta]
        reconstructed_vector = fwht(truncated)  # inverse transform of truncated spectrum
        assert np.allclose(
            marginal_from_vector(reconstructed_vector, mask, d),
            marginal_from_vector(random_counts_5, mask, d),
        )
