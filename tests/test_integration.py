"""Cross-module integration tests on realistic (small) dataset stand-ins."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    MarginalReleaseEngine,
    PrivacyBudget,
    all_k_way,
    anchored_workload,
    release_marginals,
    star_workload,
)
from repro.analysis.experiments import MethodSpec, run_accuracy_experiment
from repro.data import synthetic_adult, synthetic_nltcs
from repro.data.nltcs import NLTCS_SCHEMA
from tests.conftest import marginals_are_consistent


@pytest.fixture(scope="module")
def nltcs_small():
    """A reduced NLTCS stand-in: first 8 items, 4 000 respondents."""
    full = synthetic_nltcs(n_records=4_000, rng=11)
    return full.project(NLTCS_SCHEMA.names[:8], name="nltcs-small")


class TestNltcsPipeline:
    def test_all_methods_on_q2(self, nltcs_small):
        workload = all_k_way(nltcs_small.schema, 2)
        table = nltcs_small.contingency_table()
        errors = {}
        for strategy in ("I", "Q", "F", "C"):
            result = release_marginals(
                nltcs_small, workload, budget=1.0, strategy=strategy, rng=5
            )
            errors[strategy] = result.relative_error(table)
            assert marginals_are_consistent(workload, result.marginals)
        # At eps = 1 on a few thousand records every method should deliver a
        # usable release (relative error well below 1, the paper's usability bar).
        assert all(error < 1.0 for error in errors.values())

    def test_identity_is_dominated_on_low_order_marginals_at_full_dimension(self):
        """Figure 5(a) ordering, checked via the deterministic expected
        variances on the full 16-attribute NLTCS domain: the base-count
        strategy is far worse than (non-)uniform Fourier for 1-way marginals,
        and the optimal budgeting never hurts."""
        workload = all_k_way(NLTCS_SCHEMA, 1)
        identity = MarginalReleaseEngine(workload, "I", non_uniform=False)
        fourier = MarginalReleaseEngine(workload, "F", non_uniform=False)
        fourier_plus = MarginalReleaseEngine(workload, "F", non_uniform=True)
        query_plus = MarginalReleaseEngine(workload, "Q", non_uniform=True)
        epsilon = 1.0
        assert fourier.expected_total_variance(epsilon) < identity.expected_total_variance(epsilon)
        assert query_plus.expected_total_variance(epsilon) < identity.expected_total_variance(epsilon)
        assert fourier_plus.expected_total_variance(epsilon) <= fourier.expected_total_variance(epsilon)

    def test_plus_variants_improve_expected_variance(self, nltcs_small):
        for name in ("Q", "F", "C"):
            workload = star_workload(nltcs_small.schema, 1)
            uniform = MarginalReleaseEngine(workload, name, non_uniform=False)
            optimal = MarginalReleaseEngine(workload, name, non_uniform=True)
            assert optimal.expected_total_variance(0.5) <= uniform.expected_total_variance(0.5) * (
                1 + 1e-9
            )

    def test_anchored_workload_release(self, nltcs_small):
        workload = anchored_workload(nltcs_small.schema, 1, nltcs_small.schema.names[0])
        result = release_marginals(nltcs_small, workload, budget=0.5, strategy="F", rng=2)
        assert len(result.marginals) == len(workload)

    def test_total_count_preserved_approximately(self, nltcs_small):
        """Each released marginal should sum to roughly the number of records."""
        workload = all_k_way(nltcs_small.schema, 1)
        result = release_marginals(nltcs_small, workload, budget=2.0, strategy="F", rng=3)
        for marginal in result.marginals:
            assert marginal.sum() == pytest.approx(len(nltcs_small), rel=0.05)

    def test_accuracy_experiment_orderings(self, nltcs_small):
        """A tiny version of Figure 5(b): on a mixed-order workload the
        non-uniform Fourier budgeting does not lose to the uniform one."""
        workload = star_workload(nltcs_small.schema, 1)
        result = run_accuracy_experiment(
            nltcs_small,
            workload,
            methods=[
                MethodSpec(label="F", strategy="F", non_uniform=False),
                MethodSpec(label="F+", strategy="F", non_uniform=True),
            ],
            epsilons=[0.2],
            repetitions=6,
            rng=7,
        )
        by_method = {p.method: p.mean_relative_error for p in result.points}
        assert by_method["F+"] <= by_method["F"] * 1.1
        assert by_method["F+"] < 1.0


class TestAdultPipeline:
    @pytest.fixture(scope="class")
    def adult_small(self):
        """A projected Adult stand-in keeping the domain tractable for tests."""
        data = synthetic_adult(n_records=5_000, rng=4)
        return data.project(
            ["marital_status", "relationship", "race", "sex", "salary"], name="adult-small"
        )

    def test_schema_projection_bits(self, adult_small):
        assert adult_small.schema.total_bits == 3 + 3 + 3 + 1 + 1

    def test_release_q1_and_q2(self, adult_small):
        table = adult_small.contingency_table()
        for k in (1, 2):
            workload = all_k_way(adult_small.schema, k)
            result = release_marginals(adult_small, workload, budget=1.0, strategy="F", rng=k)
            assert result.relative_error(table) < 1.0

    def test_gaussian_release_more_accurate_than_laplace_here(self, adult_small):
        """With many measured coefficients, (eps, delta)-DP Gaussian noise has
        lower per-query error than pure-DP Laplace at the same epsilon for the
        Q strategy (L2 vs L1 sensitivity scaling)."""
        workload = all_k_way(adult_small.schema, 2)
        table = adult_small.contingency_table()
        pure_errors = []
        approx_errors = []
        for seed in range(4):
            pure = release_marginals(
                adult_small, workload, budget=PrivacyBudget.pure(0.5), strategy="Q", rng=seed
            )
            approx = release_marginals(
                adult_small,
                workload,
                budget=PrivacyBudget.approximate(0.5, 1e-6),
                strategy="Q",
                rng=seed,
            )
            pure_errors.append(pure.relative_error(table))
            approx_errors.append(approx.relative_error(table))
        assert np.mean(approx_errors) < np.mean(pure_errors) * 5.0  # sanity: same order of magnitude

    def test_clustering_reduces_measured_marginals(self, adult_small):
        from repro.strategies import ClusteringStrategy

        workload = star_workload(adult_small.schema, 1)
        strategy = ClusteringStrategy(workload)
        assert strategy.cluster_count <= len(workload)
