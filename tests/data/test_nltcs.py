"""Tests for the NLTCS schema, synthetic stand-in and loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.nltcs import (
    NLTCS_ATTRIBUTE_NAMES,
    NLTCS_N_RECORDS,
    NLTCS_SCHEMA,
    load_nltcs_csv,
    synthetic_nltcs,
)
from repro.exceptions import DataError


class TestSchema:
    def test_sixteen_binary_attributes(self):
        assert len(NLTCS_SCHEMA) == 16
        assert NLTCS_SCHEMA.is_binary
        assert NLTCS_SCHEMA.total_bits == 16
        assert NLTCS_SCHEMA.domain_size == 2**16

    def test_adl_and_iadl_split(self):
        adls = [name for name in NLTCS_ATTRIBUTE_NAMES if name.startswith("adl_")]
        iadls = [name for name in NLTCS_ATTRIBUTE_NAMES if name.startswith("iadl_")]
        assert len(adls) == 6
        assert len(iadls) == 10


class TestSyntheticNltcs:
    def test_size_and_schema(self):
        data = synthetic_nltcs(n_records=4000, rng=0)
        assert len(data) == 4000
        assert data.schema == NLTCS_SCHEMA
        assert NLTCS_N_RECORDS == 21_576

    def test_reproducible(self):
        a = synthetic_nltcs(n_records=1000, rng=9).records
        b = synthetic_nltcs(n_records=1000, rng=9).records
        assert np.array_equal(a, b)

    def test_binary_values(self):
        data = synthetic_nltcs(n_records=2000, rng=1)
        assert set(np.unique(data.records)) <= {0, 1}

    def test_all_zero_pattern_is_most_common(self):
        """The healthy (all-zero) cell dominates the real NLTCS; the synthetic
        stand-in must reproduce that shape."""
        data = synthetic_nltcs(n_records=20_000, rng=2)
        counts = data.to_vector()
        assert int(np.argmax(counts)) == 0

    def test_items_are_positively_correlated(self):
        """Disabilities co-occur (latent severity), so the covariance between
        any two ADL items should be positive."""
        data = synthetic_nltcs(n_records=20_000, rng=3)
        records = data.records[:, :6].astype(float)
        covariance = np.cov(records, rowvar=False)
        off_diagonal = covariance[np.triu_indices(6, k=1)]
        assert np.all(off_diagonal > 0)

    def test_invalid_parameters(self):
        with pytest.raises(DataError):
            synthetic_nltcs(n_records=0)
        with pytest.raises(DataError):
            synthetic_nltcs(n_records=10, class_severities=[0.5], class_weights=[0.5, 0.5])
        with pytest.raises(DataError):
            synthetic_nltcs(n_records=10, class_severities=[2.0], class_weights=[1.0])
        with pytest.raises(DataError):
            synthetic_nltcs(n_records=10, class_severities=[0.5, 0.6], class_weights=[0.7, 0.7])


class TestLoadNltcsCsv:
    def test_sixteen_column_format(self, tmp_path):
        path = tmp_path / "nltcs.csv"
        path.write_text("0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n1,1,0,0,0,0,1,0,0,0,0,0,0,0,0,0\n")
        data = load_nltcs_csv(path)
        assert len(data) == 2
        assert data.records[1, 0] == 1

    def test_packed_string_format(self, tmp_path):
        path = tmp_path / "nltcs.txt"
        path.write_text("0000000000000000\n1100001000000000\n")
        data = load_nltcs_csv(path)
        assert len(data) == 2
        assert data.records[1, :3].tolist() == [1, 1, 0]

    def test_bad_rows_skipped(self, tmp_path):
        path = tmp_path / "nltcs.csv"
        path.write_text("0,1\n" + ",".join(["0"] * 16) + "\n")
        data = load_nltcs_csv(path)
        assert len(data) == 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_nltcs_csv(tmp_path / "missing.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "nltcs.csv"
        path.write_text("\n")
        with pytest.raises(DataError):
            load_nltcs_csv(path)
