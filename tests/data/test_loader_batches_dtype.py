"""Narrowed batch dtypes: ``iter_csv_batches`` codes stay pinned to ``load_csv``."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.data.loader import _batch_code_dtype, infer_csv_schema, iter_csv_batches, load_csv
from repro.domain import Attribute, Schema


def _write_csv(path, header, rows):
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


@pytest.fixture
def survey_csv(tmp_path):
    rng = np.random.default_rng(42)
    rows = [
        [
            rng.choice(["yes", "no"]),
            rng.choice(["north", "south", "east", "west"]),
            rng.choice(["low", "mid", "high"]),
        ]
        for _ in range(700)
    ]
    return _write_csv(tmp_path / "survey.csv", ["smoker", "region", "income"], rows)


class TestBatchCodeDtype:
    def test_small_cardinalities_use_uint8(self):
        schema = Schema([Attribute("a", 2), Attribute("b", 256)])
        assert _batch_code_dtype(schema) == np.uint8

    def test_wider_cardinalities_widen_in_steps(self):
        assert _batch_code_dtype(Schema([Attribute("a", 257)])) == np.uint16
        assert _batch_code_dtype(Schema([Attribute("a", 1 << 16)])) == np.uint16
        assert _batch_code_dtype(Schema([Attribute("a", (1 << 16) + 1)])) == np.uint32

    def test_widest_attribute_wins(self):
        schema = Schema([Attribute("a", 2), Attribute("b", 70_000)])
        assert _batch_code_dtype(schema) == np.uint32


class TestBatchesMatchLoadCsv:
    def test_codes_are_pinned_to_load_csv(self, survey_csv):
        dataset = load_csv(survey_csv)
        schema = infer_csv_schema(survey_csv)
        assert schema == dataset.schema
        batches = list(iter_csv_batches(survey_csv, schema, batch_size=64))
        assert all(batch.dtype == np.uint8 for batch in batches)
        stacked = np.concatenate(batches).astype(np.int64)
        assert np.array_equal(stacked, dataset.records)

    def test_narrow_batches_pack_to_identical_domain_codes(self, survey_csv):
        dataset = load_csv(survey_csv)
        schema = dataset.schema
        narrow = np.concatenate(list(iter_csv_batches(survey_csv, schema)))
        assert np.array_equal(
            schema.encode_records(narrow), schema.encode_records(dataset.records)
        )

    def test_column_selection_reorders_to_schema_order(self, survey_csv):
        dataset = load_csv(survey_csv, columns=["income", "smoker"])
        batches = list(
            iter_csv_batches(
                survey_csv, dataset.schema, columns=["income", "smoker"], batch_size=100
            )
        )
        assert np.array_equal(np.concatenate(batches), dataset.records)

    def test_unknown_value_names_the_column(self, tmp_path):
        schema = Schema([Attribute("color", 2, labels=("blue", "red"))])
        path = _write_csv(tmp_path / "bad.csv", ["color"], [["blue"], ["green"]])
        from repro.exceptions import DataError

        with pytest.raises(DataError, match="color.*green"):
            list(iter_csv_batches(path, schema))
