"""Tests for generic CSV loading and schema inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loader import infer_schema_from_records, load_csv
from repro.exceptions import DataError


class TestInferSchema:
    def test_basic_inference(self):
        rows = [["red", "yes"], ["blue", "no"], ["red", "no"]]
        schema, matrix = infer_schema_from_records(["colour", "flag"], rows)
        assert schema.names == ("colour", "flag")
        assert schema.attribute("colour").cardinality == 2
        assert matrix.shape == (3, 2)
        # Values encoded by sorted order: blue=0, red=1; no=0, yes=1.
        assert matrix[0].tolist() == [1, 1]

    def test_single_valued_column_rejected(self):
        with pytest.raises(DataError):
            infer_schema_from_records(["only"], [["a"], ["a"]])

    def test_ragged_rows_rejected(self):
        with pytest.raises(DataError):
            infer_schema_from_records(["a", "b"], [["x", "y"], ["z"]])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            infer_schema_from_records(["a"], [])


class TestLoadCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("city,tier\nparis,a\nrome,b\nparis,b\n")
        data = load_csv(path)
        assert data.schema.names == ("city", "tier")
        assert len(data) == 3
        assert data.name == "data"

    def test_column_selection(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b,c\n1,x,p\n2,y,q\n1,x,q\n")
        data = load_csv(path, columns=["c", "a"])
        assert data.schema.names == ("c", "a")
        assert data.records.shape == (3, 2)

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n1,2\n3,4\n")
        with pytest.raises(DataError):
            load_csv(path, columns=["missing"])

    def test_no_header(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("x,1\ny,2\nx,2\n")
        data = load_csv(path, has_header=False)
        assert data.schema.names == ("column_0", "column_1")
        assert len(data) == 3

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_csv(tmp_path / "absent.csv")

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n")
        with pytest.raises(DataError):
            load_csv(path)

    def test_loaded_dataset_supports_release(self, tmp_path):
        """Loaded data feeds straight into the release pipeline."""
        from repro import all_k_way, release_marginals

        path = tmp_path / "survey.csv"
        rows = ["smoker,region,income"]
        rng = np.random.default_rng(0)
        for _ in range(200):
            rows.append(
                f"{'yes' if rng.random() < 0.3 else 'no'},"
                f"{rng.choice(['north', 'south', 'east', 'west'])},"
                f"{rng.choice(['low', 'mid', 'high'])}"
            )
        path.write_text("\n".join(rows) + "\n")
        data = load_csv(path)
        workload = all_k_way(data.schema, 2)
        result = release_marginals(data, workload, budget=1.0, strategy="F", rng=0)
        assert len(result.marginals) == len(workload)
