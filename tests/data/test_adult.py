"""Tests for the Adult schema, synthetic stand-in and CSV loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.adult import (
    ADULT_ATTRIBUTE_NAMES,
    ADULT_N_RECORDS,
    ADULT_SCHEMA,
    load_adult_csv,
    synthetic_adult,
)
from repro.exceptions import DataError


class TestSchema:
    def test_cardinalities_match_paper(self):
        expected = {
            "workclass": 9,
            "education": 16,
            "marital_status": 7,
            "occupation": 15,
            "relationship": 6,
            "race": 5,
            "sex": 2,
            "salary": 2,
        }
        for name, cardinality in expected.items():
            assert ADULT_SCHEMA.attribute(name).cardinality == cardinality

    def test_total_bits_is_23(self):
        """The paper's Adult domain: 4+4+3+4+3+3+1+1 = 23 binary attributes."""
        assert ADULT_SCHEMA.total_bits == 23
        assert ADULT_SCHEMA.domain_size == 2**23

    def test_attribute_order(self):
        assert ADULT_SCHEMA.names == ADULT_ATTRIBUTE_NAMES


class TestSyntheticAdult:
    def test_default_size(self):
        data = synthetic_adult(n_records=2000, rng=0)
        assert len(data) == 2000
        assert data.schema == ADULT_SCHEMA

    def test_default_record_count_constant(self):
        assert ADULT_N_RECORDS == 32_561

    def test_reproducible(self):
        a = synthetic_adult(n_records=500, rng=1).records
        b = synthetic_adult(n_records=500, rng=1).records
        assert np.array_equal(a, b)

    def test_values_within_domains(self):
        data = synthetic_adult(n_records=3000, rng=2)
        for column, attr in enumerate(ADULT_SCHEMA.attributes):
            assert data.records[:, column].max() < attr.cardinality
            assert data.records[:, column].min() >= 0

    def test_marginals_are_skewed_like_adult(self):
        """Majority categories should dominate their attributes (e.g. the most
        common salary bracket is <=50K and the most common sex code is Male)."""
        data = synthetic_adult(n_records=20_000, rng=3)
        salary = data.marginal(["salary"])
        assert salary[0] > salary[1]
        sex = data.marginal(["sex"])
        assert sex[0] > sex[1]
        workclass = data.marginal(["workclass"])[: ADULT_SCHEMA.attribute("workclass").cardinality]
        assert int(np.argmax(workclass)) == 0  # "Private"

    def test_invalid_parameters(self):
        with pytest.raises(DataError):
            synthetic_adult(n_records=0)
        with pytest.raises(DataError):
            synthetic_adult(n_records=10, correlation_strength=1.5)


class TestLoadAdultCsv:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_adult_csv(tmp_path / "nope.data")

    def test_parses_raw_rows(self, tmp_path):
        row = (
            "39, State-gov, 77516, Bachelors, 13, Never-married, Adm-clerical,"
            " Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K"
        )
        row_unknown = (
            "50, ?, 83311, HS-grad, 13, Divorced, ?,"
            " Unmarried, Black, Female, 0, 0, 13, United-States, >50K"
        )
        path = tmp_path / "adult.data"
        path.write_text(row + "\n" + row_unknown + "\n\n")
        data = load_adult_csv(path)
        assert len(data) == 2
        decoded = data.records
        assert decoded[0, ADULT_ATTRIBUTE_NAMES.index("salary")] == 0  # <=50K
        assert decoded[1, ADULT_ATTRIBUTE_NAMES.index("salary")] == 1  # >50K
        # '?' maps to the Unknown code of workclass/occupation.
        workclass_labels = ADULT_SCHEMA.attribute("workclass").labels
        assert workclass_labels[decoded[1, ADULT_ATTRIBUTE_NAMES.index("workclass")]] == "Unknown"

    def test_unmappable_rows_skipped_or_strict(self, tmp_path):
        bad = (
            "39, Martian-gov, 77516, Bachelors, 13, Never-married, Adm-clerical,"
            " Not-in-family, White, Male, 2174, 0, 40, Mars, <=50K"
        )
        good = (
            "39, Private, 77516, Bachelors, 13, Never-married, Adm-clerical,"
            " Not-in-family, White, Male, 2174, 0, 40, United-States, <=50K"
        )
        path = tmp_path / "adult.data"
        path.write_text(bad + "\n" + good + "\n")
        data = load_adult_csv(path)
        assert len(data) == 1
        with pytest.raises(DataError):
            load_adult_csv(path, strict=True)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "adult.data"
        path.write_text("\n")
        with pytest.raises(DataError):
            load_adult_csv(path)
