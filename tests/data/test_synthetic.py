"""Tests for the generic synthetic data generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import (
    independent_dataset,
    latent_class_dataset,
    planted_correlation_dataset,
)
from repro.domain import Attribute, Schema
from repro.exceptions import DataError


@pytest.fixture
def schema():
    return Schema([Attribute("a", 4), Attribute("b", 3), Attribute("c", 2)])


class TestIndependentDataset:
    def test_shape_and_domain(self, schema):
        data = independent_dataset(schema, 500, rng=0)
        assert len(data) == 500
        assert data.records.shape == (500, 3)
        for column, attr in enumerate(schema.attributes):
            assert data.records[:, column].max() < attr.cardinality

    def test_reproducible(self, schema):
        a = independent_dataset(schema, 100, rng=5).records
        b = independent_dataset(schema, 100, rng=5).records
        assert np.array_equal(a, b)

    def test_zipf_skew_prefers_small_codes(self, schema):
        data = independent_dataset(schema, 5000, skew=2.0, rng=0)
        marginal = data.marginal(["a"])
        assert marginal[0] > marginal[3]

    def test_explicit_probabilities(self, schema):
        probabilities = [
            np.array([1.0, 0.0, 0.0, 0.0]),
            np.array([0.0, 1.0, 0.0]),
            np.array([0.5, 0.5]),
        ]
        data = independent_dataset(schema, 200, probabilities=probabilities, rng=0)
        assert np.all(data.records[:, 0] == 0)
        assert np.all(data.records[:, 1] == 1)

    def test_invalid_probabilities_rejected(self, schema):
        with pytest.raises(DataError):
            independent_dataset(schema, 10, probabilities=[np.array([0.5, 0.5])] * 3, rng=0)

    def test_invalid_record_count(self, schema):
        with pytest.raises(ValueError):
            independent_dataset(schema, 0, rng=0)


class TestLatentClassDataset:
    def test_shape_and_reproducibility(self, schema):
        a = latent_class_dataset(schema, 300, rng=1).records
        b = latent_class_dataset(schema, 300, rng=1).records
        assert a.shape == (300, 3)
        assert np.array_equal(a, b)

    def test_class_weights_validated(self, schema):
        with pytest.raises(DataError):
            latent_class_dataset(schema, 10, n_classes=2, class_weights=[0.4, 0.4], rng=0)

    def test_concentration_validated(self, schema):
        with pytest.raises(DataError):
            latent_class_dataset(schema, 10, concentration=0.0, rng=0)

    def test_induces_correlation(self):
        """With few, sharp classes the attributes should be visibly dependent:
        the 2-way contingency table differs from the product of marginals.
        (Class distributions are random, so we check the dependence appears
        for at least one of a handful of seeds.)"""
        schema = Schema([Attribute("u", 2), Attribute("v", 2)])
        dependence = []
        for seed in range(5):
            data = latent_class_dataset(
                schema,
                20_000,
                n_classes=2,
                concentration=0.2,
                class_weights=[0.5, 0.5],
                rng=seed,
            )
            joint = data.marginal(["u", "v"]) / len(data)
            pu = data.marginal(["u"]) / len(data)
            pv = data.marginal(["v"]) / len(data)
            independent = np.outer(pv, pu).reshape(-1)  # compact index: u varies fastest
            dependence.append(np.abs(joint - independent).max())
        assert max(dependence) > 0.02


class TestPlantedCorrelationDataset:
    def test_shape(self, schema):
        data = planted_correlation_dataset(schema, 400, rng=0)
        assert data.records.shape == (400, 3)

    def test_copy_probability_validated(self, schema):
        with pytest.raises(DataError):
            planted_correlation_dataset(schema, 10, copy_probability=1.5, rng=0)

    def test_strong_copying_gives_high_agreement(self):
        schema = Schema([Attribute("p", 2), Attribute("q", 2)])
        data = planted_correlation_dataset(schema, 5000, copy_probability=0.95, rng=1)
        records = data.records
        agreement = float((records[:, 0] % 2 == records[:, 1]).mean())
        assert agreement > 0.9
