"""Regression pins for the vectorized CSV/record encoding.

``infer_schema_from_records`` used to encode with per-row Python dict
lookups; it now runs one ``numpy.unique(..., return_inverse=True)`` per
column.  These tests pin the inferred schemas (labels, cardinalities, order)
and the encoded codes against a verbatim copy of the historical scalar
implementation, on both hand-written and randomised inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.data.loader import infer_schema_from_records, load_csv
from repro.domain.attribute import Attribute
from repro.domain.schema import Schema
from repro.exceptions import DataError


def scalar_infer_schema_from_records(columns, rows):
    """Verbatim pre-vectorization reference implementation."""
    if len(rows) == 0:
        raise DataError("cannot infer a schema from an empty record collection")
    if any(len(row) != len(columns) for row in rows):
        raise DataError("all rows must have one value per column")
    attributes = []
    encodings = []
    for position, name in enumerate(columns):
        values = sorted({row[position] for row in rows})
        if len(values) < 2:
            raise DataError(
                f"column {name!r} has fewer than two distinct values and cannot "
                "be used as a categorical attribute"
            )
        attributes.append(Attribute(name, len(values), labels=tuple(values)))
        encodings.append({value: code for code, value in enumerate(values)})
    matrix = np.array(
        [[encodings[j][row[j]] for j in range(len(columns))] for row in rows],
        dtype=np.int64,
    )
    return Schema(attributes), matrix


value_strings = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=0, max_size=6
)


@st.composite
def string_tables(draw):
    n_columns = draw(st.integers(1, 4))
    n_rows = draw(st.integers(2, 30))
    # Per-column small vocabularies so columns usually have >= 2 distinct values.
    vocabularies = [
        draw(st.lists(value_strings, min_size=2, max_size=5, unique=True))
        for _ in range(n_columns)
    ]
    rows = [
        [draw(st.sampled_from(vocabularies[j])) for j in range(n_columns)]
        for _ in range(n_rows)
    ]
    return [f"col{j}" for j in range(n_columns)], rows


class TestVectorizedEncodingMatchesScalar:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(string_tables())
    def test_schema_and_codes_are_pinned(self, table):
        columns, rows = table
        try:
            expected_schema, expected_codes = scalar_infer_schema_from_records(
                columns, rows
            )
        except DataError:
            with pytest.raises(DataError):
                infer_schema_from_records(columns, rows)
            return
        schema, codes = infer_schema_from_records(columns, rows)
        assert schema == expected_schema
        assert [a.labels for a in schema.attributes] == [
            a.labels for a in expected_schema.attributes
        ]
        assert np.array_equal(codes, expected_codes)

    def test_hand_written_example(self):
        columns = ["city", "smoker"]
        rows = [["rome", "yes"], ["paris", "no"], ["rome", "no"], ["oslo", "yes"]]
        schema, codes = infer_schema_from_records(columns, rows)
        assert schema.names == ("city", "smoker")
        assert schema.attribute("city").labels == ("oslo", "paris", "rome")
        assert codes.tolist() == [[2, 1], [1, 0], [2, 0], [0, 1]]

    def test_trailing_nul_characters_stay_distinct(self):
        """Fixed-width numpy string dtypes silently drop trailing NULs; the
        object-dtype columns must keep such values distinct like the
        historical dict encoding did."""
        columns = ["c"]
        rows = [["a"], ["a\x00"], ["a"]]
        expected_schema, expected_codes = scalar_infer_schema_from_records(
            columns, rows
        )
        schema, codes = infer_schema_from_records(columns, rows)
        assert schema.attribute("c").labels == expected_schema.attribute("c").labels
        assert np.array_equal(codes, expected_codes)

    def test_single_valued_column_raises(self):
        with pytest.raises(DataError, match="fewer than two distinct"):
            infer_schema_from_records(["only"], [["x"], ["x"]])

    def test_ragged_rows_raise(self):
        with pytest.raises(DataError, match="one value per column"):
            infer_schema_from_records(["a", "b"], [["1", "2"], ["1"]])

    def test_empty_rows_raise(self):
        with pytest.raises(DataError, match="empty record collection"):
            infer_schema_from_records(["a"], [])


class TestLoadCsvStripping:
    def test_values_are_stripped_like_the_scalar_loader(self, tmp_path):
        path = tmp_path / "pad.csv"
        path.write_text("a,b\n x , u\ny,  v \nx,u\n")
        dataset = load_csv(path)
        assert dataset.schema.attribute("a").labels == ("x", "y")
        assert dataset.schema.attribute("b").labels == ("u", "v")
        assert dataset.records.tolist() == [[0, 0], [1, 1], [0, 0]]
