"""Budget ledger: per-charge accounting composes back to the requested budget."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.mechanisms.privacy import PrivacyBudget
from repro.obs import BudgetCharge, BudgetLedger, tracing
from repro.queries import all_k_way


class TestLedgerUnit:
    def test_laplace_epsilons_add_within_a_scope(self):
        ledger = BudgetLedger()
        scope = ledger.new_scope()
        for epsilon in (0.2, 0.3, 0.5):
            ledger.charge(
                BudgetCharge(
                    scope=scope,
                    group="g",
                    epsilon=epsilon,
                    delta=0.0,
                    sensitivity=1.0,
                    mechanism="laplace",
                )
            )
        totals = ledger.totals()
        assert totals["epsilon"] == pytest.approx(1.0)
        assert totals["delta"] == 0.0
        assert totals["charges"] == 3
        assert totals["scopes"] == 1

    def test_gaussian_epsilons_compose_in_quadrature(self):
        ledger = BudgetLedger()
        scope = ledger.new_scope()
        for epsilon in (0.6, 0.8):  # 3-4-5 triangle: sqrt(.36 + .64) = 1
            ledger.charge(
                BudgetCharge(
                    scope=scope,
                    group="g",
                    epsilon=epsilon,
                    delta=1e-6,
                    sensitivity=1.0,
                    mechanism="gaussian",
                )
            )
        totals = ledger.totals()
        assert totals["epsilon"] == pytest.approx(1.0)
        assert totals["delta"] == pytest.approx(1e-6)

    def test_scopes_compose_sequentially(self):
        ledger = BudgetLedger()
        for epsilon in (1.0, 0.5):
            scope = ledger.new_scope()
            ledger.charge(
                BudgetCharge(
                    scope=scope,
                    group="g",
                    epsilon=epsilon,
                    delta=0.0,
                    sensitivity=1.0,
                    mechanism="laplace",
                )
            )
        assert ledger.totals()["epsilon"] == pytest.approx(1.5)
        assert ledger.totals()["scopes"] == 2

    def test_to_dict_round_trips_charges(self):
        ledger = BudgetLedger()
        scope = ledger.new_scope("custom")
        ledger.charge(
            BudgetCharge(
                scope=scope,
                group="pairs",
                epsilon=0.25,
                delta=0.0,
                sensitivity=2.0,
                mechanism="laplace",
                cuboids=("0x3",),
                cells=4,
            )
        )
        payload = ledger.to_dict()
        (charge,) = payload["charges"]
        assert charge["scope"] == "custom-1"
        assert charge["epsilon"] == 0.25
        assert charge["sensitivity"] == 2.0
        assert charge["cuboids"] == ["0x3"]
        assert payload["totals"]["epsilon"] == pytest.approx(0.25)


class TestReleaseLedger:
    """The charges a real release records must compose to its PrivacyBudget."""

    @pytest.mark.parametrize("strategy", ["F", "Q"])
    def test_pure_release_totals_match_requested_epsilon(
        self, small_dataset, workload_2way_5, strategy
    ):
        with tracing() as recorder:
            result = release_marginals(
                small_dataset, workload_2way_5, budget=1.0, strategy=strategy, rng=7
            )
        totals = recorder.ledger.totals()
        assert totals["epsilon"] == pytest.approx(result.budget.epsilon)
        assert totals["delta"] == 0.0
        assert totals["charges"] > 0
        assert totals["scopes"] == 1
        # Every charge is a Laplace charge with positive epsilon.
        for charge in recorder.ledger.to_dict()["charges"]:
            assert charge["mechanism"] == "laplace"
            assert charge["epsilon"] > 0

    def test_gaussian_release_composes_in_quadrature(
        self, small_dataset, workload_2way_5
    ):
        budget = PrivacyBudget.approximate(1.0, 1e-6)
        with tracing() as recorder:
            release_marginals(
                small_dataset, workload_2way_5, budget=budget, strategy="F", rng=7
            )
        totals = recorder.ledger.totals()
        assert totals["epsilon"] == pytest.approx(budget.epsilon)
        assert totals["delta"] == pytest.approx(budget.delta)

    def test_sequential_releases_accumulate(self, small_dataset, workload_2way_5):
        with tracing() as recorder:
            release_marginals(
                small_dataset, workload_2way_5, budget=1.0, strategy="F", rng=1
            )
            release_marginals(
                small_dataset, workload_2way_5, budget=0.5, strategy="Q", rng=2
            )
        totals = recorder.ledger.totals()
        assert totals["epsilon"] == pytest.approx(1.5)
        assert totals["scopes"] == 2
        per_scope = recorder.ledger.scope_totals()
        assert sorted(per_scope) == ["release-1", "release-2"]
        assert per_scope["release-1"]["epsilon"] == pytest.approx(1.0)
        assert per_scope["release-2"]["epsilon"] == pytest.approx(0.5)

    def test_untraced_release_keeps_no_ledger(self, small_dataset, workload_2way_5):
        # Without an active recorder nothing accumulates anywhere global.
        result = release_marginals(
            small_dataset, workload_2way_5, budget=1.0, strategy="F", rng=7
        )
        assert np.isfinite(result.marginals[0]).all()
        with tracing() as recorder:
            assert recorder.ledger.totals()["charges"] == 0
