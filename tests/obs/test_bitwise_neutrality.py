"""Instrumentation must be bitwise-neutral: traced == untraced, bit for bit.

The acceptance gate for the observability layer.  Tracing wraps the plan /
measure / noise / consistency stages and the sharded kernel dispatch, but it
must never touch the RNG stream or any numeric path: a seeded release run
with tracing enabled has to reproduce the untraced release — and the
sha256 pin captured before the instrumentation existed — exactly.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.domain import Dataset, Schema
from repro.obs import tracing
from repro.queries import MarginalQuery, MarginalWorkload

D = 32

#: The pre-instrumentation pin of the d = 32 record-native release (see
#: tests/shards/test_shard_release_pins.py).  Tracing must reproduce it.
EXPECTED_SHA256 = "fa7bc711f5d6a31c53a1c69a7207e07c035066db7fa84f2ee1fbf9d9ed63d805"


def fingerprint(marginals) -> str:
    digest = hashlib.sha256()
    for marginal in marginals:
        digest.update(
            np.ascontiguousarray(np.asarray(marginal, dtype=np.float64)).tobytes()
        )
    return digest.hexdigest()


@pytest.fixture(scope="module")
def wide_inputs():
    schema = Schema.binary([f"a{i:02d}" for i in range(D)])
    rng = np.random.default_rng(2013)
    records = (rng.random((3000, D)) < 0.35).astype(np.int64)
    dataset = Dataset(schema, records, name="wide-32")
    masks = [1 << i for i in range(D)]
    masks += [(1 << i) | (1 << j) for i in range(8) for j in range(i + 1, 8)]
    masks += [0b111, (1 << 31) | (1 << 15) | 1]
    workload = MarginalWorkload(
        schema, [MarginalQuery(mask, D) for mask in masks], name="wide-mixed"
    )
    return dataset, workload


class TestTracedReleasePins:
    def test_traced_sharded_release_matches_the_pin(self, wide_inputs):
        dataset, workload = wide_inputs
        with tracing() as recorder:
            release = release_marginals(
                dataset,
                workload,
                budget=1.0,
                strategy="F",
                shards=3,
                workers=2,
                rng=5,
            )
        assert fingerprint(release.marginals) == EXPECTED_SHA256
        # The trace actually observed the release end to end.
        names = set(recorder.span_names())
        assert {
            "engine.release",
            "engine.plan",
            "engine.measure",
            "executor.measure",
            "executor.noise",
            "shards.dispatch",
            "shards.kernel",
        } <= names
        assert recorder.ledger.totals()["epsilon"] == pytest.approx(1.0)

    def test_traced_equals_untraced_arrays(self, wide_inputs):
        dataset, workload = wide_inputs
        kwargs = dict(budget=1.0, strategy="F", shards=3, workers=2, rng=5)
        untraced = release_marginals(dataset, workload, **kwargs)
        with tracing():
            traced = release_marginals(dataset, workload, **kwargs)
        for plain, observed in zip(untraced.marginals, traced.marginals):
            assert np.array_equal(plain, observed)


class TestConsistencyAndServingNeutrality:
    def test_consistency_projection_unaffected(self, small_dataset, workload_2way_5):
        kwargs = dict(budget=1.0, strategy="Q", consistency=True, rng=11)
        untraced = release_marginals(small_dataset, workload_2way_5, **kwargs)
        with tracing() as recorder:
            traced = release_marginals(small_dataset, workload_2way_5, **kwargs)
        assert "consistency.fourier" in recorder.span_names()
        assert fingerprint(traced.marginals) == fingerprint(untraced.marginals)

    def test_query_strategy_record_backend_unaffected(
        self, small_dataset, workload_2way_5
    ):
        kwargs = dict(budget=1.0, strategy="Q", backend="record", rng=13)
        untraced = release_marginals(small_dataset, workload_2way_5, **kwargs)
        with tracing():
            traced = release_marginals(small_dataset, workload_2way_5, **kwargs)
        assert fingerprint(traced.marginals) == fingerprint(untraced.marginals)


class TestOverheadGuard:
    def test_disabled_guard_is_a_module_flag(self):
        """The hot-path check must be a module attribute, not a dict lookup."""
        from repro.obs import runtime

        assert runtime.ENABLED is False
        assert isinstance(runtime.ENABLED, bool)

    def test_repeated_untraced_releases_stay_pinned(self, wide_inputs):
        # Running traced releases must leave no residue that perturbs later
        # untraced ones (global state leak guard).
        dataset, workload = wide_inputs
        kwargs = dict(budget=1.0, strategy="F", backend="record", rng=5)
        with tracing():
            release_marginals(dataset, workload, **kwargs)
        after = release_marginals(dataset, workload, **kwargs)
        assert fingerprint(after.marginals) == EXPECTED_SHA256
