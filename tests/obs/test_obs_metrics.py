"""Metrics registry: counters, gauges, deterministic fixed-bucket histograms."""

from __future__ import annotations

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import DEFAULT_TIME_BUCKETS, Histogram, MetricsRegistry


class TestCounter:
    def test_incrementing(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_same_name_same_counter(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("x").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("workers")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0


class TestHistogram:
    def test_default_edges_are_fixed_and_increasing(self):
        assert len(DEFAULT_TIME_BUCKETS) == 16
        assert all(
            a < b for a, b in zip(DEFAULT_TIME_BUCKETS, DEFAULT_TIME_BUCKETS[1:])
        )

    def test_non_increasing_edges_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("bad", edges=(1.0, 1.0, 2.0))
        with pytest.raises(ObservabilityError):
            Histogram("empty", edges=())

    def test_bucketing_is_deterministic(self):
        """Identical observations -> byte-identical bucket counts."""
        values = [0.00005, 0.0002, 0.0002, 0.003, 0.07, 0.07, 0.07, 42.0]
        first = Histogram("a")
        second = Histogram("b")
        for value in values:
            first.observe(value)
            second.observe(value)
        assert first.bucket_counts() == second.bucket_counts()
        assert first.count == len(values)
        assert first.total == pytest.approx(sum(values))
        # The overflow bucket catches values above the last edge.
        assert first.bucket_counts()[-1] == 1

    def test_edge_values_fall_into_the_next_bucket(self):
        histogram = Histogram("edges", edges=(1.0, 2.0))
        histogram.observe(1.0)  # on the edge: belongs to the (1, 2] bucket
        histogram.observe(0.5)
        histogram.observe(2.5)
        assert histogram.bucket_counts() == (1, 1, 1)

    def test_to_dict_shape(self):
        histogram = Histogram("h", edges=(1.0, 2.0))
        histogram.observe(1.5)
        payload = histogram.to_dict()
        assert payload["edges"] == [1.0, 2.0]
        assert payload["counts"] == [0, 1, 0]
        assert payload["count"] == 1
        assert payload["min"] == payload["max"] == 1.5


class TestSnapshot:
    def test_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc()
        registry.counter("a.count").inc(2)
        registry.gauge("workers").set(3)
        registry.histogram("lat", edges=(0.1, 1.0)).observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.count", "b.count"]
        assert snapshot["counters"]["a.count"] == 2.0
        assert snapshot["gauges"] == {"workers": 3.0}
        assert snapshot["histograms"]["lat"]["counts"] == [0, 1, 0]

    def test_identical_runs_identical_snapshots(self):
        def build() -> dict:
            registry = MetricsRegistry()
            registry.counter("cache.hits").inc(5)
            registry.gauge("shards").set(8)
            histogram = registry.histogram("t", edges=(0.001, 0.01))
            for value in (0.0005, 0.005, 0.5):
                histogram.observe(value)
            return registry.snapshot()

        assert build() == build()
