"""One CacheStats protocol across serving AnswerCache and source MarginalMemo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.obs import CacheStats, tracing
from repro.queries import all_k_way
from repro.serving.cache import AnswerCache
from repro.serving.service import QueryService
from repro.sources.record import RecordSource


class TestCacheStatsProtocol:
    def test_counts_and_hit_rate(self):
        stats = CacheStats()
        assert stats.requests == 0
        assert stats.hit_rate == 0.0
        stats.record_miss()
        stats.record_hit()
        stats.record_hit()
        stats.record_eviction()
        assert stats.requests == 3
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.to_dict() == {
            "hits": 2,
            "misses": 1,
            "evictions": 1,
            "hit_rate": pytest.approx(2 / 3),
        }

    def test_mirrors_to_metrics_only_under_tracing(self):
        stats = CacheStats(metric_prefix="test.cache")
        stats.record_hit()  # no recorder active: plain increment only
        with tracing() as recorder:
            stats.record_hit()
            stats.record_miss()
            stats.record_eviction()
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["test.cache.hits"] == 1.0
        assert counters["test.cache.misses"] == 1.0
        assert counters["test.cache.evictions"] == 1.0
        assert stats.hits == 2  # both hits counted locally


class TestAnswerCacheStats:
    def test_hits_misses_evictions(self):
        cache = AnswerCache(max_entries=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts the LRU entry ("b")
        stats = cache.stats
        assert isinstance(stats, CacheStats)
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.evictions == 1

    def test_traced_service_mirrors_cache_counters(self, small_dataset):
        workload = all_k_way(small_dataset.schema, 2)
        release = release_marginals(
            small_dataset, workload, budget=1.0, strategy="F", rng=3
        )
        service = QueryService(release)
        with tracing() as recorder:
            service.query(["a"])
            service.query(["a"])  # cache hit
        counters = recorder.metrics.snapshot()["counters"]
        assert counters["serving.cache.hits"] == 1.0
        assert counters["serving.cache.misses"] == 1.0
        assert counters["serving.queries"] == 2.0
        stats = service.stats()
        assert stats["queries"] == 2
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["hit_rate"] == pytest.approx(0.5)


class TestBatchPathObs:
    def test_traced_batch_reports_plan_cache_groups_and_span(self, small_dataset):
        workload = all_k_way(small_dataset.schema, 2)
        release = release_marginals(
            small_dataset, workload, budget=1.0, strategy="F", rng=3
        )
        # cache_size=0: every request goes through the grouped batch path.
        service = QueryService(release, cache_size=0, batch_workers=1)
        with tracing() as recorder:
            service.query_batch(
                [["a"], ["b"], {"attributes": ["a"], "where": {"b": 1}}]
            )
            service.query_batch([["a"]])  # same shape: plan cache hit
        snapshot = recorder.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["serving.batches"] == 2.0
        assert counters["serving.batched_requests"] == 4.0
        assert counters["serving.plan_cache.misses"] >= 1.0
        assert counters["serving.plan_cache.hits"] >= 1.0
        assert "serving.batch.group_size" in snapshot["histograms"]
        assert "serving.batch.aggregate" in recorder.span_names()
        stats = service.stats()
        assert stats["batch_groups"] >= 2
        assert stats["plan_cache"]["hits"] >= 1
        assert stats["request_index"]["misses"] >= 1


class TestMarginalMemoStats:
    def test_memo_hits_are_counted(self, small_dataset):
        source = RecordSource(np.arange(20, dtype=np.int64), dimension=5)
        mask = 0b00011
        first = source.marginals_for_batches([(mask, (mask,))])
        second = source.marginals_for_batches([(mask, (mask,))])
        assert np.array_equal(first[mask], second[mask])
        stats = source.memo_stats
        assert isinstance(stats, CacheStats)
        assert stats.hits >= 1
        assert stats.misses >= 1

    def test_traced_memo_mirrors_counters(self, small_dataset):
        source = RecordSource(np.arange(20, dtype=np.int64), dimension=5)
        mask = 0b00011
        with tracing() as recorder:
            source.marginals_for_batches([(mask, (mask,))])
            source.marginals_for_batches([(mask, (mask,))])
        counters = recorder.metrics.snapshot()["counters"]
        assert counters.get("record.memo.hits", 0.0) >= 1.0
        assert counters.get("record.memo.misses", 0.0) >= 1.0
        assert counters["source.batches"] >= 1.0
