"""Span recording: nesting, the disabled no-op path, and thread safety."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import (
    NOOP_SPAN,
    Recorder,
    disable,
    enable,
    recorder,
    trace_span,
    tracing,
)
from repro.obs import runtime


class TestNoopPath:
    def test_disabled_by_default(self):
        assert runtime.ENABLED is False
        assert recorder() is None

    def test_trace_span_returns_the_shared_noop(self):
        span = trace_span("anything", attr=1)
        assert span is NOOP_SPAN
        with span as inner:
            inner.set(more=2)  # must be accepted and dropped silently

    def test_noop_records_nothing(self):
        with trace_span("outer"):
            with trace_span("inner"):
                pass
        assert recorder() is None


class TestEnableDisable:
    def test_enable_installs_a_recorder(self):
        try:
            active = enable()
            assert runtime.ENABLED is True
            assert recorder() is active
        finally:
            disable()
        assert runtime.ENABLED is False
        assert recorder() is None

    def test_tracing_restores_previous_state(self):
        with tracing() as outer:
            assert recorder() is outer
            with tracing() as inner:
                assert recorder() is inner
                assert inner is not outer
            # The outer recorder comes back after the nested block.
            assert recorder() is outer
            assert runtime.ENABLED is True
        assert runtime.ENABLED is False

    def test_tracing_accepts_an_existing_recorder(self):
        mine = Recorder()
        with tracing(mine) as active:
            assert active is mine
            with trace_span("hello"):
                pass
        assert mine.span_names() == ("hello",)


class TestNesting:
    def test_parent_ids_follow_lexical_nesting(self):
        with tracing() as rec:
            with trace_span("root"):
                with trace_span("child"):
                    with trace_span("grandchild"):
                        pass
                with trace_span("sibling"):
                    pass
        by_name = {record.name: record for record in rec.spans}
        assert by_name["root"].parent_id is None
        assert by_name["child"].parent_id == by_name["root"].span_id
        assert by_name["grandchild"].parent_id == by_name["child"].span_id
        assert by_name["sibling"].parent_id == by_name["root"].span_id

    def test_durations_are_monotone_and_nested(self):
        with tracing() as rec:
            with trace_span("outer"):
                with trace_span("inner"):
                    pass
        by_name = {record.name: record for record in rec.spans}
        assert by_name["inner"].duration >= 0.0
        assert by_name["outer"].duration >= by_name["inner"].duration
        assert by_name["outer"].start <= by_name["inner"].start

    def test_attrs_and_set(self):
        with tracing() as rec:
            with trace_span("work", items=3) as span:
                span.set(outcome="ok")
        (record,) = rec.spans
        assert record.attrs == {"items": 3, "outcome": "ok"}

    def test_exception_marks_the_span_and_propagates(self):
        with tracing() as rec:
            with pytest.raises(ValueError):
                with trace_span("boom"):
                    raise ValueError("nope")
        (record,) = rec.spans
        assert record.attrs["error"] == "ValueError"

    def test_durations_by_name_aggregates(self):
        with tracing() as rec:
            for _ in range(3):
                with trace_span("repeat"):
                    pass
        stats = rec.durations_by_name()["repeat"]
        assert stats["count"] == 3
        assert stats["total"] >= stats["max"] >= stats["mean"] >= 0.0


class TestThreadSafety:
    def test_pool_workers_record_independent_stacks(self):
        """Worker threads must become span roots, not children of each other."""

        def task(index: int) -> None:
            with trace_span("task", index=index):
                with trace_span("step"):
                    pass

        with tracing() as rec:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [pool.submit(task, index) for index in range(32)]
                for future in futures:
                    future.result()

        spans = rec.spans
        assert len(spans) == 64
        assert len({record.span_id for record in spans}) == 64
        tasks = {record.span_id: record for record in spans if record.name == "task"}
        steps = [record for record in spans if record.name == "step"]
        assert len(tasks) == 32 and len(steps) == 32
        # Every task span is a thread root; every step's parent is a task
        # span recorded on the SAME worker thread.
        assert all(record.parent_id is None for record in tasks.values())
        for step in steps:
            assert step.parent_id in tasks
            assert tasks[step.parent_id].thread == step.thread

    def test_concurrent_metric_updates_are_not_lost(self):
        with tracing() as rec:
            counter = rec.metrics.counter("hits")

            def bump() -> None:
                for _ in range(1000):
                    counter.inc()

            threads = [threading.Thread(target=bump) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert counter.value == 8000


class TestSpanCap:
    """``max_spans`` bounds recorder memory for long-running servers."""

    def test_records_stop_growing_at_the_cap(self):
        recorder = Recorder(max_spans=5)
        with tracing(recorder):
            for index in range(12):
                with trace_span("request", index=index):
                    pass
        assert len(recorder.spans) == 5
        assert recorder.spans_dropped == 7
        # The oldest spans are the ones retained (arrival order).
        assert [record.attrs["index"] for record in recorder.spans] == list(range(5))

    def test_metrics_keep_aggregating_past_the_cap(self):
        recorder = Recorder(max_spans=2)
        with tracing(recorder):
            for _ in range(10):
                with trace_span("request"):
                    pass
        durations = recorder.durations_by_name()
        assert durations["request"]["count"] == 10  # histograms never drop

    def test_uncapped_recorder_is_unchanged(self):
        recorder = Recorder()
        with tracing(recorder):
            for _ in range(10):
                with trace_span("request"):
                    pass
        assert len(recorder.spans) == 10
        assert recorder.spans_dropped == 0
