"""CLI trace emission (`release --trace`) and the `stats` subcommand."""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.obs import TRACE_SCHEMA, validate_payload


@pytest.fixture
def survey_csv(tmp_path) -> Path:
    """A small categorical survey file (mirrors tests/test_cli.py)."""
    rng = np.random.default_rng(0)
    path = tmp_path / "survey.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["smoker", "region", "income"])
        for _ in range(300):
            writer.writerow(
                [
                    "yes" if rng.random() < 0.25 else "no",
                    rng.choice(["north", "south", "east", "west"]),
                    rng.choice(["low", "mid", "high"]),
                ]
            )
    return path


def _release_args(survey_csv, *extra: str) -> list:
    return [
        "release",
        "--input",
        str(survey_csv),
        "--k",
        "1",
        "--epsilon",
        "1.0",
        "--seed",
        "9",
        *extra,
    ]


class TestTraceSummary:
    def test_bare_trace_prints_the_summary(self, survey_csv, capsys):
        assert main(_release_args(survey_csv, "--trace")) == 0
        out = capsys.readouterr().out
        assert "spans (aggregated by name)" in out
        assert "engine.release" in out
        assert "privacy-budget ledger" in out

    def test_trace_out_requires_trace(self, survey_csv, tmp_path, capsys):
        code = main(
            _release_args(survey_csv, "--trace-out", str(tmp_path / "t.json"))
        )
        assert code != 0
        assert "--trace" in capsys.readouterr().err


class TestTraceJson:
    def test_json_payload_validates_and_covers_the_pipeline(
        self, survey_csv, tmp_path, capsys
    ):
        trace_path = tmp_path / "trace.json"
        args = _release_args(
            survey_csv,
            "--strategy",
            "Q",
            "--backend",
            "record",
            "--shards",
            "2",
            "--trace=json",
            "--trace-out",
            str(trace_path),
        )
        assert main(args) == 0
        payload = json.loads(trace_path.read_text())
        validate_payload(payload)
        assert payload["schema"] == TRACE_SCHEMA

        names = {span["name"] for span in payload["spans"]}
        assert {
            "engine.release",
            "engine.plan",
            "engine.measure",
            "engine.consistency",
            "executor.measure",
            "executor.noise",
            "consistency.fourier",
            "shards.dispatch",
        } <= names

        ledger = payload["ledger"]
        assert ledger["totals"]["epsilon"] == pytest.approx(1.0)
        assert ledger["totals"]["charges"] > 0
        assert payload["metrics"]["counters"]["engine.releases"] == 1.0

    def test_released_values_unchanged_by_tracing(
        self, survey_csv, tmp_path, capsys
    ):
        plain_dir = tmp_path / "plain"
        traced_dir = tmp_path / "traced"
        base = ["--k", "2", "--epsilon", "1.0", "--seed", "4"]
        assert main(
            ["release", "--input", str(survey_csv), *base, "--output", str(plain_dir)]
        ) == 0
        assert main(
            [
                "release",
                "--input",
                str(survey_csv),
                *base,
                "--output",
                str(traced_dir),
                "--trace=json",
                "--trace-out",
                str(tmp_path / "t.json"),
            ]
        ) == 0
        plain_files = sorted(p.name for p in plain_dir.glob("marginal_*.csv"))
        assert plain_files
        for name in plain_files:
            assert (plain_dir / name).read_text() == (traced_dir / name).read_text()


class TestTraceLogfmt:
    def test_logfmt_lines(self, survey_csv, capsys):
        assert main(_release_args(survey_csv, "--trace=logfmt")) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("at=")]
        kinds = {line.split()[0] for line in lines}
        assert "at=span" in kinds
        assert "at=counter" in kinds
        assert "at=charge" in kinds


class TestStatsSubcommand:
    def test_stats_summarises_a_trace_file(self, survey_csv, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            _release_args(
                survey_csv, "--trace=json", "--trace-out", str(trace_path)
            )
        ) == 0
        capsys.readouterr()
        assert main(["stats", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "spans (aggregated by name)" in out
        assert "engine.release" in out

    def test_stats_json_re_emits_the_payload(self, survey_csv, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(_release_args(survey_csv, "--trace=json", "--trace-out", str(trace_path)))
        capsys.readouterr()
        assert main(["stats", str(trace_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_payload(payload)

    def test_stats_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["stats", str(bad)]) != 0
        assert main(["stats", str(tmp_path / "missing.json")]) != 0

    def test_stats_rejects_wrong_schema(self, tmp_path, capsys):
        off_schema = tmp_path / "off.json"
        off_schema.write_text(json.dumps({"schema": "other/v9", "spans": []}))
        assert main(["stats", str(off_schema)]) != 0
