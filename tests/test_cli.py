"""Tests for the command-line interface."""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def survey_csv(tmp_path) -> Path:
    """A small categorical survey file."""
    rng = np.random.default_rng(0)
    path = tmp_path / "survey.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["smoker", "region", "income"])
        for _ in range(300):
            writer.writerow(
                [
                    "yes" if rng.random() < 0.25 else "no",
                    rng.choice(["north", "south", "east", "west"]),
                    rng.choice(["low", "mid", "high"]),
                ]
            )
    return path


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["--input", "x.csv"])
        assert args.k == 2
        assert args.epsilon == 1.0
        assert args.strategy == "F"
        assert not args.uniform
        assert args.output is None

    def test_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--input", "x.csv", "--strategy", "wavelet"])

    def test_input_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_no_prefix_abbreviation(self):
        # --out must not silently match --output (it is a flag of the
        # `release` subcommand, not of the legacy form).
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--input", "x.csv", "--out", "store"])


class TestMain:
    def test_summary_only_run(self, survey_csv, capsys):
        exit_code = main(
            ["--input", str(survey_csv), "--k", "1", "--epsilon", "2.0", "--seed", "1"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "workload" in captured.out
        assert "Q1" in captured.out
        assert "epsilon = 2" in captured.out

    def test_writes_marginal_files(self, survey_csv, tmp_path, capsys):
        output = tmp_path / "released"
        exit_code = main(
            [
                "--input",
                str(survey_csv),
                "--k",
                "2",
                "--epsilon",
                "1.0",
                "--seed",
                "3",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        files = sorted(p.name for p in output.glob("marginal_*.csv"))
        assert files == [
            "marginal_region_income.csv",
            "marginal_smoker_region.csv",
            "marginal_smoker_income.csv",
        ] or len(files) == 3
        # Each file has a header plus one row per (non-padding) cell.
        content = (output / files[0]).read_text().splitlines()
        assert content[0].endswith("count")
        assert len(content) >= 5

    def test_nonnegative_rounding(self, survey_csv, tmp_path):
        output = tmp_path / "released"
        exit_code = main(
            [
                "--input",
                str(survey_csv),
                "--k",
                "2",
                "--epsilon",
                "0.05",
                "--seed",
                "5",
                "--nonnegative",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        for path in output.glob("marginal_*.csv"):
            rows = list(csv.reader(path.open()))[1:]
            values = [float(row[-1]) for row in rows]
            assert all(value >= 0 for value in values)
            assert all(value == int(value) for value in values)

    def test_star_and_anchor_workloads(self, survey_csv):
        assert main(["--input", str(survey_csv), "--k", "1", "--star", "--seed", "0"]) == 0
        assert (
            main(
                [
                    "--input",
                    str(survey_csv),
                    "--k",
                    "1",
                    "--anchor",
                    "smoker",
                    "--seed",
                    "0",
                ]
            )
            == 0
        )

    def test_star_and_anchor_conflict(self, survey_csv, capsys):
        exit_code = main(
            [
                "--input",
                str(survey_csv),
                "--k",
                "1",
                "--star",
                "--anchor",
                "smoker",
            ]
        )
        assert exit_code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_missing_file_reports_error(self, tmp_path, capsys):
        exit_code = main(["--input", str(tmp_path / "missing.csv")])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_invalid_k_reports_error(self, survey_csv, capsys):
        exit_code = main(["--input", str(survey_csv), "--k", "7"])
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_approximate_dp_and_uniform_flags(self, survey_csv, capsys):
        exit_code = main(
            [
                "--input",
                str(survey_csv),
                "--k",
                "1",
                "--epsilon",
                "1.0",
                "--delta",
                "1e-6",
                "--uniform",
                "--strategy",
                "Q",
                "--seed",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "delta = 1e-06" in captured.out
        assert "uniform budgeting" in captured.out

    def test_column_selection(self, survey_csv, capsys):
        exit_code = main(
            [
                "--input",
                str(survey_csv),
                "--columns",
                "smoker",
                "income",
                "--k",
                "1",
                "--seed",
                "4",
            ]
        )
        assert exit_code == 0
        assert "2 attributes" in capsys.readouterr().out


class TestExplain:
    def test_explain_prints_plan_without_releasing(self, survey_csv, capsys):
        exit_code = main(
            [
                "release",
                "--input",
                str(survey_csv),
                "--k",
                "2",
                "--strategy",
                "Q",
                "--explain",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "stage 1 — plan" in captured.out
        assert "stage 2 — execute" in captured.out
        assert "stage 3 — finalize" in captured.out
        assert "batch" in captured.out
        # No release summary: the plan was printed instead.
        assert "release time" not in captured.out

    def test_explain_works_in_legacy_form(self, survey_csv, capsys):
        exit_code = main(
            ["--input", str(survey_csv), "--k", "1", "--strategy", "F", "--explain"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "fourier kernel" in captured.out
        assert "expected variance" in captured.out

    def test_explain_does_not_write_store(self, survey_csv, tmp_path, capsys):
        store = tmp_path / "store"
        exit_code = main(
            [
                "release",
                "--input",
                str(survey_csv),
                "--explain",
                "--out",
                str(store),
            ]
        )
        assert exit_code == 0
        assert not store.exists()
