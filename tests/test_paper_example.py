"""Reproduction of the paper's worked example (Section 1) end to end.

The introduction walks through releasing the marginal on A and the marginal
on A, B over a 3-attribute binary table:

* uniform noise on S = Q costs a total variance of 48/eps^2;
* non-uniform budgets (~4eps/9 and ~5eps/9) reduce it to 46.17/eps^2;
* additionally recombining the noisy answers (Step 3) reduces it to
  34.6/eps^2 — a 28% reduction over uniform.

These numbers pin down the whole budgeting + recovery pipeline, so this test
module exercises them through the public API rather than through internals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.budget import optimal_allocation, uniform_allocation
from repro.core import MarginalReleaseEngine
from repro.mechanisms import PrivacyBudget
from repro.queries.matrix import workload_matrix
from repro.recovery.least_squares import gls_recovery_matrix, recovery_variances
from repro.strategies import query_strategy
from tests.conftest import marginals_are_consistent


EPS = 1.0


class TestIntroductionNumbers:
    def test_uniform_noise_costs_48(self, paper_example_workload):
        strategy = query_strategy(paper_example_workload)
        allocation = uniform_allocation(strategy.group_specs(), PrivacyBudget.pure(EPS))
        # Sensitivity 2 -> per-answer variance 8/eps^2, six answers -> 48/eps^2.
        assert strategy.sensitivity(pure=True) == 2.0
        assert allocation.total_weighted_variance() == pytest.approx(48.0 / EPS**2)

    def test_nonuniform_budgets_cost_46_17(self, paper_example_workload):
        strategy = query_strategy(paper_example_workload)
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(EPS))
        assert allocation.total_weighted_variance() == pytest.approx(46.17 / EPS**2, rel=1e-3)
        assert allocation.verify_privacy()

    def test_recombined_recovery_costs_at_most_34_6(self, paper_example_workload):
        """Step 3 (optimal recovery) on top of the non-uniform budgets reaches
        the paper's 34.6/eps^2 — or better, since the paper's recovery is a
        hand-crafted feasible point rather than the least-squares optimum."""
        q = workload_matrix(paper_example_workload)
        budgets = np.array([4 * EPS / 9] * 2 + [5 * EPS / 9] * 4)
        variances = 2.0 / budgets**2
        recovery = gls_recovery_matrix(q, q, variances)
        total = recovery_variances(recovery, variances).sum()
        assert total <= 34.6 + 1e-6
        improvement = 1.0 - total / 48.0
        assert improvement >= 0.28  # the paper's "28% reduction"

    def test_end_to_end_release_on_figure_1_table(self, paper_example_workload, paper_example_table):
        engine = MarginalReleaseEngine(paper_example_workload, "Q", non_uniform=True)
        result = engine.release(paper_example_table, EPS, rng=0)
        assert result.consistent
        assert marginals_are_consistent(paper_example_workload, result.marginals)
        # The A marginal obtained directly and by aggregating A,B must agree.
        a_direct = result.marginals[0]
        ab = result.marginals[1]
        assert a_direct[0] == pytest.approx(ab[0] + ab[2], abs=1e-8)
        assert a_direct[1] == pytest.approx(ab[1] + ab[3], abs=1e-8)

    def test_empirical_variance_tracks_the_analysis(self, paper_example_workload, paper_example_table):
        """Monte-Carlo total squared error of the Q+ release (before the
        consistency step) matches the predicted 46.17/eps^2 within tolerance."""
        strategy = query_strategy(paper_example_workload)
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(EPS))
        truth = paper_example_workload.true_answers(paper_example_table)
        rng = np.random.default_rng(0)
        totals = []
        for _ in range(600):
            estimates = strategy.estimate(
                strategy.measure(paper_example_table.counts, allocation, rng=rng)
            )
            totals.append(
                sum(float(((e - t) ** 2).sum()) for e, t in zip(estimates, truth))
            )
        assert np.mean(totals) == pytest.approx(46.17, rel=0.15)
