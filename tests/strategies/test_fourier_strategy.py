"""Tests for the Fourier strategy."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.budget.allocation import optimal_allocation, uniform_allocation
from repro.core.bounds import fourier_total_variance_all_k_way
from repro.exceptions import WorkloadError
from repro.mechanisms import PrivacyBudget
from repro.queries import all_k_way, star_workload
from repro.strategies import FourierStrategy
from repro.strategies.base import Measurement
from repro.transforms.hadamard import fourier_coefficients_for_masks
from repro.utils.bits import dominated_by, hamming_weight
from tests.conftest import marginals_are_consistent


@pytest.fixture
def strategy(workload_2way_5):
    return FourierStrategy(workload_2way_5)


class TestGroupSpecs:
    def test_one_group_per_coefficient(self, strategy, workload_2way_5):
        specs = strategy.group_specs()
        assert len(specs) == len(workload_2way_5.fourier_masks())
        assert all(spec.size == 1 for spec in specs)

    def test_constant_is_2_to_minus_d_over_2(self, strategy, workload_2way_5):
        d = workload_2way_5.dimension
        assert all(
            spec.constant == pytest.approx(2.0 ** (-d / 2.0))
            for spec in strategy.group_specs()
        )

    def test_weights_match_lemma_42(self, binary_schema_5):
        """For all k-way marginals the weight of coefficient beta is
        2**(d-k) * C(d - ||beta||, k - ||beta||) (proof of Lemma 4.2)."""
        d, k = 5, 2
        workload = all_k_way(binary_schema_5, k)
        strategy = FourierStrategy(workload)
        for spec, beta in zip(strategy.group_specs(), strategy.coefficient_masks):
            w = hamming_weight(beta)
            expected = (2.0 ** (d - k)) * math.comb(d - w, k - w)
            assert spec.weight == pytest.approx(expected)

    def test_sensitivity_matches_coefficient_count(self, strategy, workload_2way_5):
        d = workload_2way_5.dimension
        expected = len(workload_2way_5.fourier_masks()) * 2.0 ** (-d / 2.0)
        assert strategy.sensitivity(pure=True) == pytest.approx(expected)

    def test_total_variance_matches_closed_form(self, binary_schema_5):
        """The allocation applied to the strategy's groups reproduces the
        closed forms used in the Lemma 4.2 analysis (core.bounds)."""
        d, k, eps = 5, 2, 0.8
        workload = all_k_way(binary_schema_5, k)
        strategy = FourierStrategy(workload)
        budget = PrivacyBudget.pure(eps)
        optimal = optimal_allocation(strategy.group_specs(), budget)
        uniform = uniform_allocation(strategy.group_specs(), budget)
        assert optimal.total_weighted_variance() == pytest.approx(
            fourier_total_variance_all_k_way(d, k, eps, non_uniform=True)
        )
        assert uniform.total_weighted_variance() == pytest.approx(
            fourier_total_variance_all_k_way(d, k, eps, non_uniform=False)
        )

    def test_nonuniform_beats_uniform(self, strategy):
        budget = PrivacyBudget.pure(1.0)
        optimal = optimal_allocation(strategy.group_specs(), budget)
        uniform = uniform_allocation(strategy.group_specs(), budget)
        assert optimal.total_weighted_variance() < uniform.total_weighted_variance()


class TestMeasureAndEstimate:
    def test_estimate_exact_when_noise_free(self, strategy, workload_2way_5, random_counts_5):
        """Feeding the exact coefficients through the recovery reproduces the
        exact marginals (Theorem 4.1(2))."""
        exact = fourier_coefficients_for_masks(
            random_counts_5, workload_2way_5.masks, workload_2way_5.dimension
        )
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))
        measurement = Measurement(
            strategy_name="F",
            allocation=allocation,
            values={},
            metadata={"coefficients": exact},
        )
        estimates = strategy.estimate(measurement)
        for estimate, truth in zip(estimates, workload_2way_5.true_answers(random_counts_5)):
            assert np.allclose(estimate, truth)

    def test_estimates_are_consistent(self, strategy, workload_2way_5, random_counts_5):
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(0.5))
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        estimates = strategy.estimate(measurement)
        assert marginals_are_consistent(workload_2way_5, estimates)
        assert strategy.inherently_consistent

    def test_estimate_from_values_when_metadata_missing(self, strategy, workload_2way_5, random_counts_5):
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        stripped = Measurement(
            strategy_name="F",
            allocation=allocation,
            values=measurement.values,
            metadata={},
        )
        direct = strategy.estimate(measurement)
        rebuilt = strategy.estimate(stripped)
        for a, b in zip(direct, rebuilt):
            assert np.allclose(a, b)

    def test_noisy_coefficients_accessor(self, strategy, random_counts_5):
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        coefficients = strategy.noisy_coefficients(measurement)
        assert set(coefficients) == set(strategy.coefficient_masks)

    def test_accuracy_improves_with_epsilon(self, strategy, workload_2way_5, random_counts_5):
        truth = workload_2way_5.true_answers(random_counts_5)

        def total_error(epsilon, seed):
            allocation = optimal_allocation(
                strategy.group_specs(), PrivacyBudget.pure(epsilon)
            )
            measurement = strategy.measure(random_counts_5, allocation, rng=seed)
            estimates = strategy.estimate(measurement)
            return sum(float(np.abs(e - t).sum()) for e, t in zip(estimates, truth))

        low = np.mean([total_error(0.05, s) for s in range(5)])
        high = np.mean([total_error(5.0, s) for s in range(5)])
        assert high < low

    def test_empirical_variance_matches_allocation(self, binary_schema_5):
        """The measured total squared error tracks the analytic total variance."""
        workload = all_k_way(binary_schema_5, 1)
        strategy = FourierStrategy(workload)
        budget = PrivacyBudget.pure(1.0)
        allocation = optimal_allocation(strategy.group_specs(), budget)
        x = np.zeros(workload.domain_size)
        truth = workload.true_answers(x)
        rng = np.random.default_rng(0)
        squared = []
        for _ in range(300):
            measurement = strategy.measure(x, allocation, rng=rng)
            estimates = strategy.estimate(measurement)
            squared.append(
                sum(float(((e - t) ** 2).sum()) for e, t in zip(estimates, truth))
            )
        assert np.mean(squared) == pytest.approx(allocation.total_weighted_variance(), rel=0.15)


class TestValidation:
    def test_mixed_order_workload_supported(self, binary_schema_5, random_counts_5):
        workload = star_workload(binary_schema_5, 1)
        strategy = FourierStrategy(workload)
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))
        estimates = strategy.estimate(strategy.measure(random_counts_5, allocation, rng=0))
        assert len(estimates) == len(workload)

    def test_coefficient_masks_are_downward_closed(self, strategy):
        masks = set(strategy.coefficient_masks)
        for beta in masks:
            for query_mask in strategy.workload.masks:
                if dominated_by(beta, query_mask):
                    break
            else:
                pytest.fail(f"coefficient {beta:#x} not dominated by any query")
