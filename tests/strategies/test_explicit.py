"""Tests for explicit dense-matrix strategies (wavelet, hierarchical, ...)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.budget.allocation import optimal_allocation, uniform_allocation
from repro.exceptions import RecoveryError, WorkloadError
from repro.mechanisms import PrivacyBudget
from repro.queries import all_k_way, datacube_workload
from repro.queries.matrix import fourier_basis_matrix, workload_matrix
from repro.strategies import ExplicitMatrixStrategy
from repro.transforms.hierarchical import hierarchical_matrix
from repro.transforms.wavelet import haar_matrix
from tests.conftest import marginals_are_consistent


@pytest.fixture
def workload(binary_schema_5):
    return all_k_way(binary_schema_5, 1)


class TestConstruction:
    def test_identity_strategy(self, workload):
        strategy = ExplicitMatrixStrategy(workload, np.eye(32), name="dense-identity")
        assert strategy.strategy_matrix.shape == (32, 32)
        assert len(strategy.row_groups) == 1

    def test_wrong_column_count_rejected(self, workload):
        with pytest.raises(WorkloadError):
            ExplicitMatrixStrategy(workload, np.eye(16))

    def test_insufficient_row_space_rejected(self, workload):
        # A single all-ones row cannot express 1-way marginals.
        with pytest.raises(RecoveryError):
            ExplicitMatrixStrategy(workload, np.ones((1, 32)))

    def test_wavelet_strategy_groups(self, workload):
        strategy = ExplicitMatrixStrategy(workload, haar_matrix(32), name="wavelet")
        # log2(32) + 1 = 6 levels.
        assert len(strategy.row_groups) == 6

    def test_hierarchical_strategy_groups(self, workload):
        strategy = ExplicitMatrixStrategy(workload, hierarchical_matrix(32), name="hier")
        assert len(strategy.row_groups) == 6

    def test_fourier_matrix_groups(self, binary_schema_3):
        workload = all_k_way(binary_schema_3, 1)
        strategy = ExplicitMatrixStrategy(workload, fourier_basis_matrix(3), name="dense-fourier")
        assert len(strategy.row_groups) == 8


class TestRelease:
    @pytest.mark.parametrize(
        "matrix_builder, name",
        [
            (lambda: np.eye(32), "identity"),
            (lambda: haar_matrix(32), "wavelet"),
            (lambda: hierarchical_matrix(32), "hierarchical"),
            (lambda: fourier_basis_matrix(5), "fourier"),
        ],
    )
    def test_high_budget_recovers_truth(self, workload, random_counts_5, matrix_builder, name):
        strategy = ExplicitMatrixStrategy(workload, matrix_builder(), name=name)
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(50000.0))
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        estimates = strategy.estimate(measurement)
        for estimate, truth in zip(estimates, workload.true_answers(random_counts_5)):
            assert np.allclose(estimate, truth, atol=1.0)

    def test_gls_estimates_are_consistent(self, workload, random_counts_5):
        strategy = ExplicitMatrixStrategy(workload, haar_matrix(32), name="wavelet")
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(0.5))
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        estimates = strategy.estimate(measurement)
        assert marginals_are_consistent(workload, estimates, tol=1e-5)

    def test_nonuniform_never_worse_in_expectation(self, workload):
        from repro.core.variance import per_query_variances

        budget = PrivacyBudget.pure(1.0)
        strategy = ExplicitMatrixStrategy(workload, haar_matrix(32), name="wavelet")
        optimal = optimal_allocation(strategy.group_specs(), budget)
        uniform = uniform_allocation(strategy.group_specs(), budget)
        assert per_query_variances(strategy, optimal).sum() <= per_query_variances(
            strategy, uniform
        ).sum() * (1 + 1e-9)

    def test_gaussian_release(self, workload, random_counts_5):
        strategy = ExplicitMatrixStrategy(workload, np.eye(32), name="identity")
        allocation = optimal_allocation(
            strategy.group_specs(), PrivacyBudget.approximate(2.0, 1e-6)
        )
        estimates = strategy.estimate(strategy.measure(random_counts_5, allocation, rng=0))
        assert len(estimates) == len(workload)

    def test_row_noise_variances(self, workload):
        strategy = ExplicitMatrixStrategy(workload, np.eye(32), name="identity")
        allocation = uniform_allocation(strategy.group_specs(), PrivacyBudget.pure(2.0))
        variances = strategy.row_noise_variances(allocation)
        assert variances.shape == (32,)
        assert np.allclose(variances, 2.0 / 2.0**2)

    def test_datacube_workload_over_small_domain(self, binary_schema_3, paper_example_table):
        workload = datacube_workload(binary_schema_3)
        strategy = ExplicitMatrixStrategy(workload, np.eye(8), name="identity")
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(10000.0))
        estimates = strategy.estimate(
            strategy.measure(paper_example_table.counts, allocation, rng=0)
        )
        for estimate, truth in zip(estimates, workload.true_answers(paper_example_table)):
            assert np.allclose(estimate, truth, atol=0.2)
