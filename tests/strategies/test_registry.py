"""Tests for the strategy registry."""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.strategies import (
    ClusteringStrategy,
    FourierStrategy,
    IdentityStrategy,
    MarginalSetStrategy,
    available_strategies,
    make_strategy,
)


class TestRegistry:
    def test_available_names(self):
        assert available_strategies() == ("I", "Q", "F", "C")

    @pytest.mark.parametrize(
        "name, expected_type",
        [
            ("I", IdentityStrategy),
            ("identity", IdentityStrategy),
            ("Q", MarginalSetStrategy),
            ("query", MarginalSetStrategy),
            ("F", FourierStrategy),
            ("fourier", FourierStrategy),
            ("C", ClusteringStrategy),
            ("cluster", ClusteringStrategy),
            ("clustering", ClusteringStrategy),
        ],
    )
    def test_builders(self, workload_2way_5, name, expected_type):
        strategy = make_strategy(name, workload_2way_5)
        assert isinstance(strategy, expected_type)
        assert strategy.workload is workload_2way_5

    def test_case_insensitive_aliases(self, workload_2way_5):
        assert isinstance(make_strategy("Fourier", workload_2way_5), FourierStrategy)

    def test_unknown_name_rejected(self, workload_2way_5):
        with pytest.raises(WorkloadError):
            make_strategy("wavelet-of-doom", workload_2way_5)

    def test_paper_labels_match_strategy_names(self, workload_2way_5):
        for name in available_strategies():
            assert make_strategy(name, workload_2way_5).name == name
