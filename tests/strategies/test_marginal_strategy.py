"""Tests for marginal-set strategies (including S = Q)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.budget.allocation import optimal_allocation, uniform_allocation
from repro.budget.grouping import greedy_grouping, group_specs_from_matrices
from repro.exceptions import WorkloadError
from repro.mechanisms import PrivacyBudget
from repro.queries import MarginalQuery, MarginalWorkload, all_k_way, star_workload
from repro.queries.matrix import strategy_matrix_from_masks, workload_matrix
from repro.strategies import MarginalSetStrategy, query_strategy
from repro.strategies.marginal import submarginal


class TestSubmarginal:
    def test_basic_aggregation(self, random_counts_5):
        from repro.domain.contingency import marginal_from_vector

        super_mask, sub_mask = 0b01110, 0b00110
        super_marginal = marginal_from_vector(random_counts_5, super_mask, 5)
        direct = marginal_from_vector(random_counts_5, sub_mask, 5)
        assert np.allclose(submarginal(super_marginal, super_mask, sub_mask), direct)

    def test_not_dominated_rejected(self):
        with pytest.raises(WorkloadError):
            submarginal(np.zeros(4), 0b011, 0b100)

    def test_sub_equal_super_is_identity(self, random_counts_5):
        from repro.domain.contingency import marginal_from_vector

        marginal = marginal_from_vector(random_counts_5, 0b101, 5)
        assert np.allclose(submarginal(marginal, 0b101, 0b101), marginal)

    def test_sub_zero_is_total(self, random_counts_5):
        from repro.domain.contingency import marginal_from_vector

        marginal = marginal_from_vector(random_counts_5, 0b11, 5)
        assert submarginal(marginal, 0b11, 0)[0] == pytest.approx(random_counts_5.sum())


class TestConstruction:
    def test_query_strategy_measures_every_query(self, workload_2way_5):
        strategy = query_strategy(workload_2way_5)
        assert set(strategy.strategy_masks) == set(workload_2way_5.masks)
        assert all(strategy.assignment[m] == m for m in workload_2way_5.masks)

    def test_uncovered_query_rejected(self, binary_schema_5):
        workload = all_k_way(binary_schema_5, 2)
        with pytest.raises(WorkloadError):
            MarginalSetStrategy(workload, [workload.masks[0]])

    def test_default_assignment_prefers_smallest_dominating(self, binary_schema_5):
        workload = all_k_way(binary_schema_5, 1)
        masks = list(workload.masks) + [0b00011]
        strategy = MarginalSetStrategy(workload, masks)
        # Each 1-way query is dominated by itself (order 1) and possibly by the
        # 2-way strategy marginal; the self-assignment must win.
        for query in workload.queries:
            assert strategy.assignment[query.mask] == query.mask

    def test_explicit_assignment_validated(self, binary_schema_5):
        workload = all_k_way(binary_schema_5, 1)
        union = 0b00011
        with pytest.raises(WorkloadError):
            MarginalSetStrategy(
                workload, [union], assignment={workload.masks[4]: union}
            )  # query 'e' not dominated by the union of a and b

    def test_duplicate_strategy_masks_collapse(self, workload_2way_5):
        masks = list(workload_2way_5.masks) * 2
        strategy = MarginalSetStrategy(workload_2way_5, masks)
        assert len(strategy.strategy_masks) == len(workload_2way_5)

    def test_mask_outside_domain_rejected(self, workload_2way_5):
        with pytest.raises(WorkloadError):
            MarginalSetStrategy(workload_2way_5, [1 << 10])


class TestGroupSpecs:
    def test_one_group_per_strategy_marginal(self, workload_2way_5):
        strategy = query_strategy(workload_2way_5)
        specs = strategy.group_specs()
        assert len(specs) == len(workload_2way_5)
        assert all(spec.constant == 1.0 for spec in specs)
        assert all(spec.weight == pytest.approx(4.0) for spec in specs)

    def test_weights_match_dense_computation(self, binary_schema_5):
        """Analytic group weights equal the dense b_i computation of Sec. 3.1
        for the S = Q strategy on a mixed-order workload."""
        workload = star_workload(binary_schema_5, 1)
        strategy = query_strategy(workload)
        specs = strategy.group_specs()

        dense_s = strategy_matrix_from_masks(list(strategy.strategy_masks), 5)
        dense_groups = greedy_grouping(dense_s)
        dense_specs = group_specs_from_matrices(dense_s, np.eye(dense_s.shape[0]), dense_groups)
        assert sorted(s.weight for s in specs) == pytest.approx(
            sorted(s.weight for s in dense_specs)
        )
        assert sorted(s.size for s in specs) == sorted(s.size for s in dense_specs)

    def test_sensitivity_counts_strategy_marginals(self, workload_2way_5):
        strategy = query_strategy(workload_2way_5)
        assert strategy.sensitivity(pure=True) == len(workload_2way_5)

    def test_covering_strategy_weight_accumulates_members(self, binary_schema_5):
        workload = all_k_way(binary_schema_5, 1)
        full = binary_schema_5.full_mask
        strategy = MarginalSetStrategy(workload, [full])
        spec = strategy.group_specs()[0]
        # One strategy marginal with 32 cells answering 5 queries.
        assert spec.size == 32
        assert spec.weight == pytest.approx(32 * 5)

    def test_query_weight_vector(self, workload_2way_5):
        strategy = query_strategy(workload_2way_5)
        a = np.zeros(len(workload_2way_5))
        a[3] = 5.0
        specs = strategy.group_specs(a)
        weights = sorted(spec.weight for spec in specs)
        assert weights[-1] == pytest.approx(20.0)
        assert all(w == 0.0 for w in weights[:-1])


class TestMeasureAndEstimate:
    def test_estimates_close_to_truth_at_high_epsilon(self, workload_2way_5, random_counts_5):
        strategy = query_strategy(workload_2way_5)
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(5000.0))
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        estimates = strategy.estimate(measurement)
        for estimate, truth in zip(estimates, workload_2way_5.true_answers(random_counts_5)):
            assert np.allclose(estimate, truth, atol=0.05)

    def test_estimate_uses_assigned_super_marginal(self, binary_schema_5, random_counts_5):
        workload = all_k_way(binary_schema_5, 1)
        full = binary_schema_5.full_mask
        strategy = MarginalSetStrategy(workload, [full])
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(10000.0))
        measurement = strategy.measure(random_counts_5, allocation, rng=1)
        estimates = strategy.estimate(measurement)
        for estimate, truth in zip(estimates, workload.true_answers(random_counts_5)):
            assert np.allclose(estimate, truth, atol=0.5)

    def test_unused_strategy_marginal_not_measured(self, binary_schema_5, random_counts_5):
        workload = all_k_way(binary_schema_5, 1)
        masks = list(workload.masks) + [0b00011]  # extra marginal nobody is assigned to
        strategy = MarginalSetStrategy(workload, masks)
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        unused = measurement.group_values("marginal-0x3")
        assert np.all(np.isnan(unused))
        # The used marginals are still fine.
        estimates = strategy.estimate(measurement)
        assert all(np.all(np.isfinite(e)) for e in estimates)

    def test_gaussian_measurement_runs(self, workload_2way_5, random_counts_5):
        strategy = query_strategy(workload_2way_5)
        allocation = optimal_allocation(
            strategy.group_specs(), PrivacyBudget.approximate(1.0, 1e-6)
        )
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        assert len(strategy.estimate(measurement)) == len(workload_2way_5)

    def test_measurement_reproducible(self, workload_2way_5, random_counts_5):
        strategy = query_strategy(workload_2way_5)
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(0.5))
        first = strategy.estimate(strategy.measure(random_counts_5, allocation, rng=11))
        second = strategy.estimate(strategy.measure(random_counts_5, allocation, rng=11))
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_mixed_order_workload_q_plus_beats_q(self, binary_schema_5):
        """On Q1* the optimal budgeting strictly beats uniform for S = Q
        (this is the paper's headline improvement for the Q strategy)."""
        workload = star_workload(binary_schema_5, 1)
        strategy = query_strategy(workload)
        budget = PrivacyBudget.pure(1.0)
        uniform = uniform_allocation(strategy.group_specs(), budget)
        optimal = optimal_allocation(strategy.group_specs(), budget)
        assert optimal.total_weighted_variance() < uniform.total_weighted_variance()
