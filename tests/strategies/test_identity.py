"""Tests for the identity (noisy base counts) strategy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.budget.allocation import optimal_allocation, uniform_allocation
from repro.mechanisms import PrivacyBudget
from repro.queries import all_k_way
from repro.strategies import IdentityStrategy
from tests.conftest import marginals_are_consistent


@pytest.fixture
def strategy(workload_2way_5):
    return IdentityStrategy(workload_2way_5)


class TestGroupSpecs:
    def test_single_group(self, strategy, workload_2way_5):
        specs = strategy.group_specs()
        assert len(specs) == 1
        assert specs[0].constant == 1.0
        assert specs[0].size == workload_2way_5.domain_size

    def test_weight_is_domain_times_query_count(self, strategy, workload_2way_5):
        spec = strategy.group_specs()[0]
        assert spec.weight == pytest.approx(workload_2way_5.domain_size * len(workload_2way_5))

    def test_per_query_weights(self, strategy, workload_2way_5):
        a = np.zeros(len(workload_2way_5))
        a[0] = 2.0
        spec = strategy.group_specs(a)[0]
        assert spec.weight == pytest.approx(workload_2way_5.domain_size * 2.0)

    def test_sensitivity_is_one(self, strategy):
        assert strategy.sensitivity(pure=True) == 1.0
        assert strategy.sensitivity(pure=False) == 1.0

    def test_uniform_is_optimal(self, strategy):
        """The paper: for S = I the optimal allocation is always uniform."""
        specs = strategy.group_specs()
        budget = PrivacyBudget.pure(0.7)
        assert optimal_allocation(specs, budget).total_weighted_variance() == pytest.approx(
            uniform_allocation(specs, budget).total_weighted_variance()
        )


class TestMeasureAndEstimate:
    def test_estimates_shapes(self, strategy, workload_2way_5, random_counts_5):
        allocation = uniform_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        estimates = strategy.estimate(measurement)
        assert len(estimates) == len(workload_2way_5)
        for query, estimate in zip(workload_2way_5.queries, estimates):
            assert estimate.shape == (query.size,)

    def test_estimates_are_consistent(self, strategy, workload_2way_5, random_counts_5):
        """All marginals are aggregations of one noisy table, hence consistent."""
        allocation = uniform_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        estimates = strategy.estimate(measurement)
        assert marginals_are_consistent(workload_2way_5, estimates)
        assert strategy.inherently_consistent

    def test_noise_has_expected_magnitude(self, strategy, workload_2way_5):
        x = np.zeros(workload_2way_5.domain_size)
        allocation = uniform_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))
        rng = np.random.default_rng(0)
        samples = np.concatenate(
            [
                strategy.measure(x, allocation, rng=rng).group_values("base-counts")
                for _ in range(400)
            ]
        )
        # Uniform allocation with sensitivity 1: per-cell variance 2 / eps^2 = 2.
        assert samples.var() == pytest.approx(2.0, rel=0.1)

    def test_estimate_unbiased_over_repetitions(self, strategy, workload_2way_5, random_counts_5):
        allocation = uniform_allocation(strategy.group_specs(), PrivacyBudget.pure(2.0))
        truth = workload_2way_5.true_answers(random_counts_5)
        rng = np.random.default_rng(0)
        sums = [np.zeros(q.size) for q in workload_2way_5.queries]
        repetitions = 60
        for _ in range(repetitions):
            measurement = strategy.measure(random_counts_5, allocation, rng=rng)
            for accumulator, estimate in zip(sums, strategy.estimate(measurement)):
                accumulator += estimate
        for accumulator, true_marginal in zip(sums, truth):
            mean = accumulator / repetitions
            # Std of the mean of 2**(d-k)-cell sums is sqrt(2 * 8 / reps) ~ 0.5.
            assert np.allclose(mean, true_marginal, atol=2.0)

    def test_measure_validates_vector_length(self, strategy):
        allocation = uniform_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))
        with pytest.raises(Exception):
            strategy.measure(np.zeros(7), allocation, rng=0)

    def test_gaussian_measurement(self, strategy, random_counts_5, workload_2way_5):
        allocation = uniform_allocation(
            strategy.group_specs(), PrivacyBudget.approximate(1.0, 1e-6)
        )
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        estimates = strategy.estimate(measurement)
        assert len(estimates) == len(workload_2way_5)

    def test_check_allocation_rejects_foreign_allocation(self, strategy, workload_2way_5):
        from repro.strategies import query_strategy

        other = query_strategy(workload_2way_5)
        foreign = uniform_allocation(other.group_specs(), PrivacyBudget.pure(1.0))
        with pytest.raises(Exception):
            strategy.check_allocation(foreign)
