"""Tests for the greedy clustering strategy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.budget.allocation import optimal_allocation, uniform_allocation
from repro.exceptions import WorkloadError
from repro.mechanisms import PrivacyBudget
from repro.queries import MarginalQuery, MarginalWorkload, all_k_way, star_workload
from repro.strategies import ClusteringStrategy, greedy_cluster_masks, query_strategy
from repro.utils.bits import dominated_by


class TestGreedyClusterMasks:
    def test_covering(self, workload_2way_5):
        masks, assignment = greedy_cluster_masks(workload_2way_5)
        assert set(assignment) == set(workload_2way_5.masks)
        for query_mask, centroid in assignment.items():
            assert centroid in masks
            assert dominated_by(query_mask, centroid)

    def test_single_query_stays_alone(self, binary_schema_3):
        workload = MarginalWorkload(
            binary_schema_3, [MarginalQuery.from_attributes(binary_schema_3, ["A"])]
        )
        masks, assignment = greedy_cluster_masks(workload)
        assert masks == [workload.masks[0]]

    def test_nested_queries_merge(self, binary_schema_3):
        """A marginal and a super-marginal should collapse into one cluster:
        measuring the super-marginal answers both with sensitivity 1."""
        workload = MarginalWorkload(
            binary_schema_3,
            [
                MarginalQuery.from_attributes(binary_schema_3, ["A"]),
                MarginalQuery.from_attributes(binary_schema_3, ["A", "B"]),
            ],
        )
        masks, assignment = greedy_cluster_masks(workload)
        assert masks == [0b011]
        assert assignment == {0b001: 0b011, 0b011: 0b011}

    def test_never_worse_than_query_strategy_cost(self, binary_schema_5):
        """The greedy merge only accepts cost-reducing merges, so the uniform
        cost of the clustering is at most that of the singleton clustering."""
        workload = star_workload(binary_schema_5, 1)
        masks, assignment = greedy_cluster_masks(workload, cost_model="uniform")

        def uniform_cost(mask_list, assign):
            cells = {m: 0.0 for m in mask_list}
            for query_mask, centroid in assign.items():
                cells[centroid] += 2.0 ** bin(centroid).count("1")
            return len(mask_list) ** 2 * sum(cells.values())

        singleton_cost = uniform_cost(
            list(workload.masks), {m: m for m in workload.masks}
        )
        assert uniform_cost(masks, assignment) <= singleton_cost + 1e-9

    def test_max_merges_caps_work(self, workload_2way_5):
        masks_unlimited, _ = greedy_cluster_masks(workload_2way_5)
        masks_capped, _ = greedy_cluster_masks(workload_2way_5, max_merges=1)
        assert len(masks_capped) >= len(masks_unlimited)
        assert len(masks_capped) >= len(workload_2way_5) - 1

    def test_invalid_cost_model(self, workload_2way_5):
        with pytest.raises(WorkloadError):
            greedy_cluster_masks(workload_2way_5, cost_model="bogus")

    def test_query_weights_length_checked(self, workload_2way_5):
        with pytest.raises(WorkloadError):
            greedy_cluster_masks(workload_2way_5, query_weights=[1.0])

    def test_optimal_cost_model_also_covers(self, workload_2way_5):
        masks, assignment = greedy_cluster_masks(workload_2way_5, cost_model="optimal")
        assert all(dominated_by(q, assignment[q]) for q in workload_2way_5.masks)


class TestVectorizedGreedyRegression:
    """Pin the exact output of the broadcasted pairwise merge scan.

    The O(g^2) Python double loop was replaced by a vectorised pairwise
    cost computation; these fixtures pin its clustering decisions so any
    future change to the scan (ordering, tie-breaking, cost model) shows up
    as an explicit diff.
    """

    def _schema6(self):
        from repro.domain import Schema

        return Schema.binary(["a", "b", "c", "d", "e", "f"])

    def test_all_2way_uniform(self):
        workload = all_k_way(self._schema6(), 2)
        masks, assignment = greedy_cluster_masks(workload, cost_model="uniform")
        assert masks == [7, 25, 30, 44, 51]
        assert assignment == {
            3: 7, 5: 7, 6: 7, 9: 25, 10: 30, 12: 30, 17: 25, 18: 30,
            20: 30, 24: 25, 33: 51, 34: 51, 36: 44, 40: 44, 48: 51,
        }

    def test_star_optimal(self):
        workload = star_workload(self._schema6(), 1)
        masks, assignment = greedy_cluster_masks(workload, cost_model="optimal")
        assert masks == [31, 33]
        assert set(assignment.values()) == {31, 33}
        assert assignment[33] == 33 and assignment[32] == 33
        assert all(assignment[m] == 31 for m in assignment if m not in (32, 33))

    def test_star_uniform_weighted(self):
        workload = star_workload(self._schema6(), 1)
        weights = np.linspace(0.5, 2.0, len(workload))
        masks, assignment = greedy_cluster_masks(
            workload, cost_model="uniform", query_weights=weights
        )
        assert masks == [63]
        assert all(centroid == 63 for centroid in assignment.values())

    def test_matches_scalar_rescan(self):
        """One round of the vectorised scan equals a literal scalar re-scan."""
        from repro.strategies.clustering import _Cluster, _best_merge

        rng = np.random.default_rng(7)
        workload = all_k_way(self._schema6(), 2)
        clusters = [
            _Cluster(centroid=q.mask, member_masks=[q.mask], member_weight=float(w))
            for q, w in zip(workload.queries, rng.uniform(0.5, 3.0, len(workload)))
        ]
        for model in ("uniform", "optimal"):
            pair, cost = _best_merge(clusters, model)
            g = len(clusters)
            weights = [c.recovery_weight for c in clusters]
            best = None
            for i in range(g):
                for j in range(i + 1, g):
                    merged_centroid = clusters[i].centroid | clusters[j].centroid
                    merged_weight = (1 << bin(merged_centroid).count("1")) * (
                        clusters[i].member_weight + clusters[j].member_weight
                    )
                    if model == "uniform":
                        candidate = (g - 1) ** 2 * (
                            sum(weights) - weights[i] - weights[j] + merged_weight
                        )
                    else:
                        candidate = (
                            sum(w ** (1 / 3) for w in weights)
                            - weights[i] ** (1 / 3)
                            - weights[j] ** (1 / 3)
                            + merged_weight ** (1 / 3)
                        ) ** 3
                    if best is None or candidate < best[1]:
                        best = ((i, j), candidate)
            assert pair == best[0]
            assert cost == pytest.approx(best[1], rel=1e-12)


class TestClusteringStrategy:
    def test_is_marginal_set_strategy(self, workload_2way_5):
        strategy = ClusteringStrategy(workload_2way_5)
        assert strategy.cluster_count == len(strategy.strategy_masks)
        assert strategy.name == "C"
        assert strategy.cost_model == "uniform"

    def test_sensitivity_is_cluster_count(self, workload_2way_5):
        strategy = ClusteringStrategy(workload_2way_5)
        assert strategy.sensitivity(pure=True) == strategy.cluster_count

    def test_end_to_end_release(self, workload_2way_5, random_counts_5):
        strategy = ClusteringStrategy(workload_2way_5)
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(5000.0))
        measurement = strategy.measure(random_counts_5, allocation, rng=0)
        estimates = strategy.estimate(measurement)
        for estimate, truth in zip(estimates, workload_2way_5.true_answers(random_counts_5)):
            assert np.allclose(estimate, truth, atol=1.0)

    def test_expected_variance_not_worse_than_query_strategy(self, binary_schema_5):
        """The clustering exists to beat S = Q under uniform noise; check the
        analytic total variance reflects that on a nested workload."""
        workload = star_workload(binary_schema_5, 1)
        budget = PrivacyBudget.pure(1.0)
        cluster = ClusteringStrategy(workload)
        query = query_strategy(workload)
        cluster_var = uniform_allocation(cluster.group_specs(), budget).total_weighted_variance()
        query_var = uniform_allocation(query.group_specs(), budget).total_weighted_variance()
        assert cluster_var <= query_var * (1 + 1e-9)

    def test_nonuniform_budgeting_helps_or_matches(self, workload_2way_5):
        strategy = ClusteringStrategy(workload_2way_5)
        budget = PrivacyBudget.pure(1.0)
        optimal = optimal_allocation(strategy.group_specs(), budget)
        uniform = uniform_allocation(strategy.group_specs(), budget)
        assert optimal.total_weighted_variance() <= uniform.total_weighted_variance() * (1 + 1e-9)

    def test_max_merges_parameter(self, workload_2way_5):
        capped = ClusteringStrategy(workload_2way_5, max_merges=0)
        assert capped.cluster_count == len(workload_2way_5)
