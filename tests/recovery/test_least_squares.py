"""Tests for generalised least-squares recovery (Section 3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RecoveryError
from repro.queries.matrix import fourier_basis_matrix, workload_matrix
from repro.recovery.least_squares import (
    gls_estimate,
    gls_recovery_matrix,
    gls_solution,
    recovery_variances,
)


class TestGlsSolution:
    def test_noise_free_recovery_exact(self, random_counts_5):
        strategy = np.eye(32)
        variances = np.ones(32)
        assert np.allclose(gls_solution(strategy, variances, random_counts_5), random_counts_5)

    def test_orthonormal_strategy_matches_transpose(self, random_counts_5):
        """Observation 1: for an orthonormal strategy the GLS solution is S^T z
        regardless of the noise variances."""
        strategy = fourier_basis_matrix(5)
        z = strategy @ random_counts_5
        rng = np.random.default_rng(0)
        variances = rng.uniform(0.5, 5.0, size=32)
        assert np.allclose(gls_solution(strategy, variances, z), strategy.T @ z)

    def test_weighted_average_of_repeated_measurements(self):
        """Two noisy measurements of the same scalar with different variances
        must combine by inverse-variance weighting — the defining property of
        generalised least squares."""
        strategy = np.array([[1.0], [1.0]])
        variances = np.array([1.0, 4.0])
        z = np.array([10.0, 20.0])
        expected = (10.0 / 1.0 + 20.0 / 4.0) / (1.0 / 1.0 + 1.0 / 4.0)
        assert gls_solution(strategy, variances, z)[0] == pytest.approx(expected)

    def test_rank_deficient_falls_back_to_least_squares(self):
        strategy = np.array([[1.0, 1.0], [2.0, 2.0]])
        variances = np.array([1.0, 1.0])
        z = strategy @ np.array([1.0, 2.0])
        solution = gls_solution(strategy, variances, z)
        # The sum x0 + x1 = 3 is identifiable even though x itself is not.
        assert solution.sum() == pytest.approx(3.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(RecoveryError):
            gls_solution(np.eye(3), np.ones(2), np.zeros(3))
        with pytest.raises(RecoveryError):
            gls_solution(np.eye(3), np.array([1.0, -1.0, 1.0]), np.zeros(3))
        with pytest.raises(RecoveryError):
            gls_solution(np.eye(3), np.ones(3), np.zeros(4))
        with pytest.raises(RecoveryError):
            gls_solution(np.zeros(3), np.ones(3), np.zeros(3))


class TestGlsRecoveryMatrix:
    def test_satisfies_q_equals_rs(self, paper_example_workload):
        q = workload_matrix(paper_example_workload)
        strategy = q.copy()
        variances = np.array([1.0, 1.0, 0.5, 0.5, 0.5, 0.5])
        recovery = gls_recovery_matrix(q, strategy, variances)
        assert np.allclose(recovery @ strategy, q, atol=1e-8)

    def test_estimate_matches_matrix_application(self, paper_example_workload, paper_example_table):
        q = workload_matrix(paper_example_workload)
        strategy = q.copy()
        variances = np.array([2.0, 2.0, 1.0, 1.0, 1.0, 1.0])
        rng = np.random.default_rng(0)
        z = strategy @ paper_example_table.counts + rng.normal(size=6)
        recovery = gls_recovery_matrix(q, strategy, variances)
        assert np.allclose(recovery @ z, gls_estimate(q, strategy, variances, z))

    def test_intro_example_variance_reduction(self, paper_example_workload):
        """The introduction's final trick: with S = Q and the non-uniform
        budgets (4/9, 5/9), answering the marginal on A by averaging the noisy
        A count with the sum of the matching A,B cells drops its variance to
        5.77/eps^2 and the total to 34.6/eps^2; the full least-squares
        recovery can only do better still."""
        q = workload_matrix(paper_example_workload)
        eps = 1.0
        budgets = np.array([4 * eps / 9] * 2 + [5 * eps / 9] * 4)
        variances = 2.0 / budgets**2

        # The paper's hand-crafted recovery for the A marginal: answer the
        # count of A=0 by z1/2 + (z3 + z5)/2 where z3, z5 are the matching
        # A,B cells.  Columns of R index the strategy rows in the order
        # (A=0, A=1, AB=00, AB=10, AB=01, AB=11).
        paper_recovery_a = np.array(
            [
                [0.5, 0.0, 0.5, 0.0, 0.5, 0.0],
                [0.0, 0.5, 0.0, 0.5, 0.0, 0.5],
            ]
        )
        # The combination really recovers the A marginal exactly ...
        assert np.allclose(paper_recovery_a @ q, q[:2])
        # ... and its per-answer variance is the 5.77/eps^2 the paper quotes.
        paper_per_answer = recovery_variances(paper_recovery_a, variances)
        assert paper_per_answer[0] == pytest.approx(5.77, rel=2e-2)
        assert paper_per_answer[1] == pytest.approx(5.77, rel=2e-2)

        gls = gls_recovery_matrix(q, q, variances)
        per_answer = recovery_variances(gls, variances)
        # The optimal recovery is at least as good as both the trivial
        # recovery (46.17/eps^2) and the paper's 34.6/eps^2 combination.
        assert per_answer.sum() <= 34.6 + 1e-6
        assert per_answer.sum() < 46.17

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(RecoveryError):
            gls_recovery_matrix(np.eye(3), np.eye(4), np.ones(4))


class TestRecoveryVariances:
    def test_simple(self):
        recovery = np.array([[1.0, 1.0], [0.5, 0.0]])
        variances = np.array([2.0, 3.0])
        assert np.allclose(recovery_variances(recovery, variances), [5.0, 0.5])

    def test_shape_checks(self):
        with pytest.raises(RecoveryError):
            recovery_variances(np.eye(2), np.ones(3))

    def test_gls_minimises_variance_among_unbiased_recoveries(self, paper_example_workload):
        """Any other valid recovery (Q = RS) has at least the GLS variance."""
        q = workload_matrix(paper_example_workload)
        variances = np.array([3.0, 3.0, 1.0, 1.0, 1.0, 1.0])
        gls = gls_recovery_matrix(q, q, variances)
        gls_total = recovery_variances(gls, variances).sum()
        trivial_total = recovery_variances(np.eye(6), variances).sum()
        assert gls_total <= trivial_total + 1e-9
