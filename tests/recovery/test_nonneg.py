"""Tests for non-negativity and integrality post-processing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConsistencyError
from repro.recovery.nonneg import (
    nonnegative_consistent,
    project_nonnegative,
    round_to_integers,
)
from tests.conftest import marginals_are_consistent


class TestProjectNonnegative:
    def test_clips_negative_cells(self):
        marginals = [np.array([1.0, -2.0, 3.0]), np.array([-0.5, 0.0])]
        clipped = project_nonnegative(marginals)
        assert clipped[0].tolist() == [1.0, 0.0, 3.0]
        assert clipped[1].tolist() == [0.0, 0.0]

    def test_does_not_modify_input(self):
        marginal = np.array([-1.0, 2.0])
        project_nonnegative([marginal])
        assert marginal[0] == -1.0

    def test_nonnegative_input_unchanged(self):
        marginal = np.array([0.0, 5.0, 2.0])
        assert np.array_equal(project_nonnegative([marginal])[0], marginal)


class TestRoundToIntegers:
    def test_rounds(self):
        rounded = round_to_integers([np.array([1.2, 2.7, -0.4])])[0]
        assert rounded.tolist() == [1.0, 3.0, -0.0]

    def test_integers_unchanged(self):
        marginal = np.array([1.0, 4.0])
        assert np.array_equal(round_to_integers([marginal])[0], marginal)


class TestNonnegativeConsistent:
    def test_output_is_consistent_and_nearly_nonnegative(self, workload_2way_5):
        # A very sparse table: most marginal cells are zero, so additive noise
        # routinely produces negative released counts.
        x = np.zeros(workload_2way_5.domain_size)
        x[3] = 12.0
        x[17] = 5.0
        rng = np.random.default_rng(0)
        noisy = [
            truth + rng.laplace(scale=4.0, size=truth.shape)
            for truth in workload_2way_5.true_answers(x)
        ]
        baseline_negative = min(float(m.min()) for m in noisy)
        assert baseline_negative < 0  # the scenario actually exercises clipping
        result = nonnegative_consistent(workload_2way_5, noisy, iterations=12)
        assert marginals_are_consistent(workload_2way_5, result.marginals)
        worst_negative = min(float(m.min()) for m in result.marginals)
        # Alternating projections should substantially reduce negativity.
        assert worst_negative >= baseline_negative / 2
        assert worst_negative > -5.0

    def test_nonnegative_consistent_input_is_fixed_point(self, workload_2way_5, random_counts_5):
        truth = workload_2way_5.true_answers(random_counts_5)
        result = nonnegative_consistent(workload_2way_5, truth, iterations=3)
        for projected, original in zip(result.marginals, truth):
            assert np.allclose(projected, original, atol=1e-6)

    def test_invalid_iterations(self, workload_2way_5, random_counts_5):
        truth = workload_2way_5.true_answers(random_counts_5)
        with pytest.raises(ConsistencyError):
            nonnegative_consistent(workload_2way_5, truth, iterations=0)
