"""Tests for the Fourier-coefficient consistency projection (Section 4.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConsistencyError
from repro.queries import all_k_way, star_workload
from repro.queries.matrix import fourier_recovery_matrix
from repro.recovery.consistency import (
    fourier_consistency,
    fourier_consistency_lp,
    make_consistent,
)
from tests.conftest import marginals_are_consistent


def noisy_marginals(workload, x, scale, seed):
    rng = np.random.default_rng(seed)
    return [truth + rng.laplace(scale=scale, size=truth.shape) for truth in workload.true_answers(x)]


class TestFourierConsistencyL2:
    def test_already_consistent_is_fixed_point(self, workload_2way_5, random_counts_5):
        truth = workload_2way_5.true_answers(random_counts_5)
        result = fourier_consistency(workload_2way_5, truth)
        for projected, original in zip(result.marginals, truth):
            assert np.allclose(projected, original, atol=1e-8)
        assert result.residual == pytest.approx(0.0, abs=1e-8)

    def test_output_is_consistent(self, workload_2way_5, random_counts_5):
        noisy = noisy_marginals(workload_2way_5, random_counts_5, scale=5.0, seed=1)
        result = fourier_consistency(workload_2way_5, noisy)
        assert marginals_are_consistent(workload_2way_5, result.marginals)

    def test_matches_dense_least_squares(self, binary_schema_5, random_counts_5):
        """The closed form (diagonal normal equations) equals the dense
        least-squares solution over the recovery matrix R."""
        workload = star_workload(binary_schema_5, 1)
        noisy = noisy_marginals(workload, random_counts_5, scale=3.0, seed=2)
        result = fourier_consistency(workload, noisy)

        recovery = fourier_recovery_matrix(workload)
        target = np.concatenate(noisy)
        dense_solution, *_ = np.linalg.lstsq(recovery, target, rcond=None)
        dense_marginals = recovery @ dense_solution
        assert np.allclose(np.concatenate(result.marginals), dense_marginals, atol=1e-7)

    def test_projection_never_increases_l2_distance_to_truth(self, workload_2way_5, random_counts_5):
        """Projecting onto the consistent subspace (which contains the truth)
        cannot increase the L2 distance to the true answers."""
        truth = np.concatenate(workload_2way_5.true_answers(random_counts_5))
        for seed in range(5):
            noisy = noisy_marginals(workload_2way_5, random_counts_5, scale=4.0, seed=seed)
            result = fourier_consistency(workload_2way_5, noisy)
            before = np.linalg.norm(np.concatenate(noisy) - truth)
            after = np.linalg.norm(np.concatenate(result.marginals) - truth)
            assert after <= before + 1e-9

    def test_weighted_projection_prefers_heavier_queries(self, binary_schema_3):
        """With overlapping queries, upweighting one pulls the shared Fourier
        coefficients towards that query's (noisy) values."""
        workload = star_workload(binary_schema_3, 1, fraction=1.0)
        x = np.array([5.0, 1.0, 3.0, 2.0, 4.0, 0.0, 1.0, 2.0])
        noisy = noisy_marginals(workload, x, scale=2.0, seed=3)
        heavy_index = 0
        weights = np.ones(len(workload))
        weights[heavy_index] = 100.0
        weighted = fourier_consistency(workload, noisy, query_weights=weights)
        unweighted = fourier_consistency(workload, noisy)
        heavy_error_weighted = np.abs(weighted.marginals[heavy_index] - noisy[heavy_index]).sum()
        heavy_error_unweighted = np.abs(unweighted.marginals[heavy_index] - noisy[heavy_index]).sum()
        assert heavy_error_weighted <= heavy_error_unweighted + 1e-9

    def test_coefficients_cover_support(self, workload_2way_5, random_counts_5):
        noisy = noisy_marginals(workload_2way_5, random_counts_5, scale=1.0, seed=4)
        result = fourier_consistency(workload_2way_5, noisy)
        assert set(result.coefficients) == set(workload_2way_5.fourier_masks())

    def test_input_validation(self, workload_2way_5):
        with pytest.raises(ConsistencyError):
            fourier_consistency(workload_2way_5, [np.zeros(4)] * (len(workload_2way_5) - 1))
        bad_shape = [np.zeros(4)] * len(workload_2way_5)
        bad_shape[0] = np.zeros(3)
        with pytest.raises(ConsistencyError):
            fourier_consistency(workload_2way_5, bad_shape)
        with_nan = [np.zeros(4)] * len(workload_2way_5)
        with_nan[0] = np.array([np.nan, 0, 0, 0])
        with pytest.raises(ConsistencyError):
            fourier_consistency(workload_2way_5, with_nan)
        with pytest.raises(ConsistencyError):
            fourier_consistency(
                workload_2way_5,
                [np.zeros(q.size) for q in workload_2way_5.queries],
                query_weights=np.zeros(len(workload_2way_5)),
            )


class TestFourierConsistencyLp:
    def test_l1_output_is_consistent(self, binary_schema_5, random_counts_5):
        workload = all_k_way(binary_schema_5, 1)
        noisy = noisy_marginals(workload, random_counts_5, scale=4.0, seed=5)
        result = fourier_consistency_lp(workload, noisy, norm=1)
        assert marginals_are_consistent(workload, result.marginals, tol=1e-4)
        assert result.norm == 1

    def test_linf_output_is_consistent(self, binary_schema_5, random_counts_5):
        workload = all_k_way(binary_schema_5, 1)
        noisy = noisy_marginals(workload, random_counts_5, scale=4.0, seed=6)
        result = fourier_consistency_lp(workload, noisy, norm="inf")
        assert marginals_are_consistent(workload, result.marginals, tol=1e-4)
        assert result.norm == "inf"

    def test_l1_residual_not_larger_than_l2_projection(self, binary_schema_5, random_counts_5):
        workload = all_k_way(binary_schema_5, 1)
        noisy = noisy_marginals(workload, random_counts_5, scale=4.0, seed=7)
        lp = fourier_consistency_lp(workload, noisy, norm=1)
        ls = fourier_consistency(workload, noisy)
        l1_of_ls = sum(
            float(np.abs(a - b).sum()) for a, b in zip(ls.marginals, noisy)
        )
        assert lp.residual <= l1_of_ls + 1e-6

    def test_invalid_norm_rejected(self, workload_2way_5):
        with pytest.raises(ConsistencyError):
            fourier_consistency_lp(
                workload_2way_5, [np.zeros(q.size) for q in workload_2way_5.queries], norm=3
            )

    def test_already_consistent_is_fixed_point(self, binary_schema_5, random_counts_5):
        workload = all_k_way(binary_schema_5, 1)
        truth = workload.true_answers(random_counts_5)
        result = fourier_consistency_lp(workload, truth, norm=1)
        for projected, original in zip(result.marginals, truth):
            assert np.allclose(projected, original, atol=1e-6)


class TestMakeConsistent:
    def test_dispatch_l2(self, workload_2way_5, random_counts_5):
        noisy = noisy_marginals(workload_2way_5, random_counts_5, scale=2.0, seed=8)
        assert make_consistent(workload_2way_5, noisy).norm == 2

    def test_dispatch_l1(self, binary_schema_5, random_counts_5):
        workload = all_k_way(binary_schema_5, 1)
        noisy = noisy_marginals(workload, random_counts_5, scale=2.0, seed=9)
        assert make_consistent(workload, noisy, norm=1).norm == 1

    def test_weights_rejected_for_lp(self, binary_schema_5, random_counts_5):
        workload = all_k_way(binary_schema_5, 1)
        noisy = noisy_marginals(workload, random_counts_5, scale=2.0, seed=10)
        with pytest.raises(ConsistencyError):
            make_consistent(workload, noisy, norm=1, query_weights=np.ones(len(workload)))
