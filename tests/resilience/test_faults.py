"""The fault-injection harness: validation, determinism, scoping."""

from __future__ import annotations

import pytest

from repro.exceptions import ResilienceError, TransientFault
from repro.resilience import FaultPlan, FaultSpec, fault_injection
from repro.resilience import faults


class TestFaultSpec:
    def test_unknown_site_is_rejected(self):
        with pytest.raises(ResilienceError, match="unknown injection site"):
            FaultSpec("shards.bogus", hits=(1,))

    def test_hits_and_rate_are_mutually_exclusive(self):
        with pytest.raises(ResilienceError, match="not both"):
            FaultSpec("shards.task", hits=(1,), rate=0.5)

    def test_spec_must_fail_something(self):
        with pytest.raises(ResilienceError, match="fails nothing"):
            FaultSpec("shards.task")

    def test_hits_are_one_based(self):
        with pytest.raises(ResilienceError, match="1-based"):
            FaultSpec("shards.task", hits=(0,))

    def test_rate_bounds(self):
        with pytest.raises(ResilienceError, match=r"\[0, 1\]"):
            FaultSpec("shards.task", rate=1.5)

    def test_canonical_errors_per_site(self):
        from concurrent.futures.process import BrokenProcessPool

        assert FaultSpec("pool.worker", hits=(1,)).resolved_error() is BrokenProcessPool
        io_error = FaultSpec("store.read", hits=(1,)).resolved_error()
        assert issubclass(io_error, TransientFault)
        assert issubclass(io_error, OSError)
        assert FaultSpec("shards.task", hits=(1,)).resolved_error() is TransientFault

    def test_explicit_error_override(self):
        spec = FaultSpec("spill.merge", hits=(1,), error=RuntimeError)
        assert spec.resolved_error() is RuntimeError


class TestFaultPlan:
    def test_duplicate_sites_are_rejected(self):
        with pytest.raises(ResilienceError, match="twice"):
            FaultPlan([
                FaultSpec("shards.task", hits=(1,)),
                FaultSpec("shards.task", hits=(2,)),
            ])

    def test_total_planned_counts_hit_specs(self):
        plan = FaultPlan([
            FaultSpec("shards.task", hits=(1, 3)),
            FaultSpec("store.read", rate=0.5),
        ])
        assert plan.total_planned() == 2
        assert plan.sites == ("shards.task", "store.read")


class TestInjection:
    def test_disabled_by_default(self):
        assert faults.ENABLED is False
        assert faults.injector() is None
        faults.fire("shards.task")  # no-op, never raises

    def test_exact_hits_fire_on_schedule(self):
        plan = FaultPlan([FaultSpec("shards.task", hits=(2,))])
        with fault_injection(plan) as injector:
            faults.fire("shards.task")
            with pytest.raises(TransientFault, match="injected fault"):
                faults.fire("shards.task")
            faults.fire("shards.task")
            assert injector.injected("shards.task") == 1
            assert injector.hit_counts["shards.task"] == 3
        assert faults.ENABLED is False

    def test_unplanned_sites_never_fire(self):
        with fault_injection(FaultPlan([FaultSpec("store.read", hits=(1,))])) as inj:
            for _ in range(10):
                faults.fire("shards.task")
            assert inj.injected() == 0

    def test_rate_decisions_are_deterministic_per_seed(self):
        def decisions(seed: int):
            fired = []
            plan = FaultPlan([FaultSpec("spill.merge", rate=0.4)], seed=seed)
            with fault_injection(plan):
                for step in range(30):
                    try:
                        faults.fire("spill.merge")
                        fired.append(False)
                    except TransientFault:
                        fired.append(True)
            return fired

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)
        assert any(decisions(7))

    def test_nested_injection_restores_outer_plan(self):
        outer = FaultPlan([FaultSpec("shards.task", hits=(1,))])
        inner = FaultPlan([FaultSpec("store.read", hits=(1,))])
        with fault_injection(outer) as outer_inj:
            with fault_injection(inner):
                assert faults.injector().plan is inner
            assert faults.injector() is outer_inj
        assert faults.injector() is None

    def test_state_restored_after_error_inside_block(self):
        with pytest.raises(RuntimeError):
            with fault_injection(FaultPlan([FaultSpec("shards.task", hits=(1,))])):
                raise RuntimeError("boom")
        assert faults.ENABLED is False
        assert faults.injector() is None
