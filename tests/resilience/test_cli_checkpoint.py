"""CLI round trip of ``release --checkpoint`` / ``--resume``."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.cli import main
from repro.resilience import ReleaseCheckpoint
from repro.serving.store import ReleaseStore


@pytest.fixture
def survey_csv(tmp_path):
    rng = np.random.default_rng(17)
    path = tmp_path / "survey.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["smoker", "region", "income"])
        for _ in range(300):
            writer.writerow(
                [
                    "yes" if rng.random() < 0.3 else "no",
                    rng.choice(["north", "south"]),
                    rng.choice(["low", "mid", "high"]),
                ]
            )
    return path


def _release_args(survey_csv, store, ckpt, *extra):
    return [
        "release",
        "--input",
        str(survey_csv),
        "--k",
        "2",
        "--epsilon",
        "1.0",
        "--seed",
        "1",
        "--strategy",
        "Q",
        "--out",
        str(store),
        "--checkpoint",
        str(ckpt),
        *extra,
    ]


class TestCheckpointCli:
    def test_checkpoint_resume_round_trip_is_bitwise(
        self, survey_csv, tmp_path, capsys
    ):
        ckpt = tmp_path / "ckpt"
        assert main(_release_args(survey_csv, tmp_path / "store1", ckpt)) == 0
        capsys.readouterr()
        assert ReleaseCheckpoint(ckpt).entry_count > 0

        # Re-running against a used checkpoint without --resume is refused.
        rc = main(_release_args(survey_csv, tmp_path / "store2", ckpt))
        err = capsys.readouterr().err
        assert rc == 2
        assert "--resume" in err

        # With --resume the staged batches replay and the release is bitwise
        # identical: both stores pin the same marginal digests.
        rc = main(_release_args(survey_csv, tmp_path / "store2", ckpt, "--resume"))
        capsys.readouterr()
        assert rc == 0
        first = ReleaseStore(tmp_path / "store1", create=False)
        second = ReleaseStore(tmp_path / "store2", create=False)
        assert first.marginal_digests(first.release_ids()[0]) == (
            second.marginal_digests(second.release_ids()[0])
        )

    def test_resume_without_checkpoint_is_refused(self, survey_csv, tmp_path, capsys):
        rc = main(
            [
                "release",
                "--input",
                str(survey_csv),
                "--k",
                "2",
                "--epsilon",
                "1.0",
                "--seed",
                "1",
                "--strategy",
                "Q",
                "--out",
                str(tmp_path / "store"),
                "--resume",
            ]
        )
        err = capsys.readouterr().err
        assert rc == 2
        assert "--resume requires --checkpoint" in err
