"""Checkpointed releases: resume after a hard kill is bitwise identical.

The engine stages each measured batch (exact, pre-noise marginals) in the
checkpoint; noise is drawn only after every exact value exists, so a resumed
run with the same rng seed replays the staged batches and reproduces the
uninterrupted release bit for bit — including after a SIGKILL mid-measure.
"""

from __future__ import annotations

import hashlib
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.core.engine import release_marginals
from repro.data import synthetic_nltcs
from repro.exceptions import CheckpointError
from repro.obs.runtime import tracing
from repro.queries import all_k_way
from repro.resilience import ReleaseCheckpoint


def fingerprint(marginals) -> str:
    digest = hashlib.sha256()
    for marginal in marginals:
        digest.update(
            np.ascontiguousarray(np.asarray(marginal, dtype=np.float64)).tobytes()
        )
    return digest.hexdigest()


@pytest.fixture(scope="module")
def inputs():
    dataset = synthetic_nltcs(400, rng=5)
    workload = all_k_way(dataset.schema, 2)
    return dataset, workload


@pytest.fixture(scope="module")
def clean_pin(inputs):
    dataset, workload = inputs
    release = release_marginals(dataset, workload, budget=1.0, strategy="Q", rng=11)
    return fingerprint(release.marginals)


class TestCheckpointedRelease:
    def test_checkpointed_run_matches_a_clean_run_bitwise(
        self, tmp_path, inputs, clean_pin
    ):
        dataset, workload = inputs
        release = release_marginals(
            dataset,
            workload,
            budget=1.0,
            strategy="Q",
            rng=11,
            checkpoint=tmp_path / "ckpt",
        )
        assert fingerprint(release.marginals) == clean_pin
        # Every measured batch got staged.
        assert ReleaseCheckpoint(tmp_path / "ckpt").entry_count > 0

    def test_resume_replays_staged_batches_bitwise(self, tmp_path, inputs, clean_pin):
        dataset, workload = inputs
        kwargs = dict(budget=1.0, strategy="Q", rng=11, checkpoint=tmp_path / "ckpt")
        release_marginals(dataset, workload, **kwargs)
        with tracing() as recorder:
            resumed = release_marginals(dataset, workload, resume=True, **kwargs)
        assert fingerprint(resumed.marginals) == clean_pin
        counters = recorder.metrics.snapshot()["counters"]
        assert counters.get("checkpoint.entries_replayed", 0) > 0
        assert counters.get("checkpoint.entries_measured", 0) == 0

    def test_reuse_without_resume_is_refused(self, tmp_path, inputs):
        dataset, workload = inputs
        kwargs = dict(budget=1.0, strategy="Q", rng=11, checkpoint=tmp_path / "ckpt")
        release_marginals(dataset, workload, **kwargs)
        with pytest.raises(CheckpointError, match="resume"):
            release_marginals(dataset, workload, **kwargs)

    def test_checkpoint_from_a_different_release_is_refused(self, tmp_path, inputs):
        dataset, workload = inputs
        release_marginals(
            dataset,
            workload,
            budget=1.0,
            strategy="Q",
            rng=11,
            checkpoint=tmp_path / "ckpt",
        )
        with pytest.raises(CheckpointError, match="different release"):
            release_marginals(
                dataset,
                workload,
                budget=2.0,  # different budget → different fingerprint
                strategy="Q",
                rng=11,
                checkpoint=tmp_path / "ckpt",
                resume=True,
            )

    def test_non_marginal_kernels_refuse_checkpoints(self, tmp_path, inputs):
        dataset, workload = inputs
        with pytest.raises(CheckpointError, match="marginal"):
            release_marginals(
                dataset,
                workload,
                budget=1.0,
                strategy="F",
                rng=11,
                checkpoint=tmp_path / "ckpt",
            )


KILL_SCRIPT = textwrap.dedent(
    """
    import os
    import signal
    import sys

    import numpy as np

    from repro.core.engine import release_marginals
    from repro.data import synthetic_nltcs
    from repro.queries import all_k_way
    from repro.resilience import ReleaseCheckpoint

    class KillAfter(ReleaseCheckpoint):
        '''Stages batches normally, then dies mid-release like a crashed host.'''

        def __init__(self, directory, kill_after):
            super().__init__(directory)
            self._kill_after = kill_after

        def store(self, mask, values):
            super().store(mask, values)
            if self.entry_count >= self._kill_after:
                os.kill(os.getpid(), signal.SIGKILL)

    directory, kill_after = sys.argv[1], int(sys.argv[2])
    dataset = synthetic_nltcs(400, rng=5)
    workload = all_k_way(dataset.schema, 2)
    release_marginals(
        dataset,
        workload,
        budget=1.0,
        strategy="Q",
        rng=11,
        checkpoint=KillAfter(directory, kill_after),
    )
    print("UNREACHABLE: the release survived the kill")
    sys.exit(3)
    """
)


class TestKillResume:
    def test_sigkill_mid_release_then_resume_is_bitwise(
        self, tmp_path, inputs, clean_pin
    ):
        dataset, workload = inputs
        script = tmp_path / "kill_release.py"
        script.write_text(KILL_SCRIPT)
        ckpt_dir = tmp_path / "ckpt"

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), str(ckpt_dir), "3"],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        # The kill left a partial (but uncorrupted) checkpoint behind.
        staged = ReleaseCheckpoint(ckpt_dir)
        assert staged.entry_count >= 3
        assert list(ckpt_dir.glob("*.tmp")) == []

        resumed = release_marginals(
            dataset,
            workload,
            budget=1.0,
            strategy="Q",
            rng=11,
            checkpoint=ckpt_dir,
            resume=True,
        )
        assert fingerprint(resumed.marginals) == clean_pin
