"""End-to-end fault recovery: injected failures leave release bytes unchanged.

The retried units (shard kernels, store reads) are pure and the dispatch
layer consumes shard results in fixed shard order, so a release that
survives injected faults must be **bitwise identical** to a clean run —
the property every test here pins with a marginal-bytes fingerprint.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import release_marginals
from repro.data import synthetic_nltcs
from repro.exceptions import ShardError
from repro.queries import all_k_way
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy, fault_injection
from repro.shards.sharded import ShardedRecordSource
from repro.store import open_source, write_source


def fingerprint(marginals) -> str:
    digest = hashlib.sha256()
    for marginal in marginals:
        digest.update(
            np.ascontiguousarray(np.asarray(marginal, dtype=np.float64)).tobytes()
        )
    return digest.hexdigest()


@pytest.fixture(scope="module")
def inputs():
    dataset = synthetic_nltcs(600, rng=9)
    workload = all_k_way(dataset.schema, 2)
    return dataset, workload


@pytest.fixture(scope="module")
def clean_pin(inputs):
    dataset, workload = inputs
    source = dataset.as_source(backend="record", shards=4, workers=2)
    release = release_marginals(source, workload, budget=1.0, strategy="Q", rng=21)
    return fingerprint(release.marginals)


def _release_fingerprint(dataset, workload, **source_kwargs):
    source = dataset.as_source(backend="record", **source_kwargs)
    release = release_marginals(source, workload, budget=1.0, strategy="Q", rng=21)
    return fingerprint(release.marginals)


class TestShardTaskRecovery:
    def test_pooled_dispatch_retries_bitwise(self, inputs, clean_pin):
        dataset, workload = inputs
        plan = FaultPlan([FaultSpec("shards.task", hits=(1, 3, 5))])
        with fault_injection(plan) as injector:
            pin = _release_fingerprint(dataset, workload, shards=4, workers=2)
        assert injector.injected("shards.task") == 3
        assert pin == clean_pin

    def test_serial_dispatch_retries_bitwise(self, inputs, clean_pin):
        dataset, workload = inputs
        plan = FaultPlan([FaultSpec("shards.task", hits=(1, 2))])
        with fault_injection(plan) as injector:
            pin = _release_fingerprint(dataset, workload, shards=4, workers=1)
        assert injector.injected("shards.task") == 2
        assert pin == clean_pin

    def test_exhausted_retries_surface_a_targeted_shard_error(self, inputs):
        dataset, workload = inputs
        # Hit the same shard on every attempt: the retry budget (3) runs out.
        plan = FaultPlan([FaultSpec("shards.task", hits=tuple(range(1, 40)))])
        with fault_injection(plan):
            with pytest.raises(ShardError, match=r"kind='thread'"):
                _release_fingerprint(dataset, workload, shards=4, workers=2)


class TestPoolWorkerRecovery:
    def test_broken_pool_is_rebuilt_and_replayed_bitwise(self, inputs):
        dataset, workload = inputs
        reference = _release_fingerprint(
            dataset, workload, shards=4, workers=2, executor="process"
        )
        plan = FaultPlan([FaultSpec("pool.worker", hits=(2,))])
        with fault_injection(plan) as injector:
            pin = _release_fingerprint(
                dataset, workload, shards=4, workers=2, executor="process"
            )
        assert injector.injected("pool.worker") == 1
        assert pin == reference

    def test_second_pool_break_names_the_configuration(self, inputs):
        dataset, workload = inputs
        # The pool is rebuilt once; a fault storm that keeps breaking it must
        # surface the targeted error naming workers/kind and the escape hatch.
        plan = FaultPlan([FaultSpec("pool.worker", hits=tuple(range(1, 60)))])
        with fault_injection(plan):
            with pytest.raises(ShardError, match="kind='process'.*thread pool|thread pool"):
                _release_fingerprint(
                    dataset, workload, shards=4, workers=2, executor="process"
                )


class TestStoreRecovery:
    def test_mapped_reads_retry_bitwise(self, tmp_path, inputs, clean_pin):
        dataset, workload = inputs
        reference = dataset.as_source(backend="record")
        path = write_source(
            tmp_path / "src",
            reference.codes,
            reference.weights,
            dimension=dataset.schema.total_bits,
            schema=dataset.schema,
            shards=4,
        )
        plan = FaultPlan([FaultSpec("store.read", hits=(1, 4))])
        with fault_injection(plan) as injector:
            mapped = open_source(path, workers=2)
            release = release_marginals(
                mapped, workload, budget=1.0, strategy="Q", rng=21
            )
        assert injector.injected("store.read") == 2
        assert fingerprint(release.marginals) == clean_pin

    def test_open_verify_retries_transient_faults(self, tmp_path, inputs):
        dataset, _ = inputs
        reference = dataset.as_source(backend="record")
        path = write_source(
            tmp_path / "src",
            reference.codes,
            reference.weights,
            dimension=dataset.schema.total_bits,
            schema=dataset.schema,
            shards=3,
        )
        plan = FaultPlan([FaultSpec("store.open", hits=(1,))])
        with fault_injection(plan) as injector:
            source = open_source(path, verify=True)
        assert injector.injected("store.open") == 1
        assert source.distinct_records == reference.distinct_records

    def test_spill_merge_faults_propagate_uncorrupted(self, inputs):
        # The merge is not retryable mid-stream (the iterator's positions
        # advance); the site exists to prove a fault fails the ingest cleanly
        # rather than yielding a torn chunk.
        from repro.exceptions import TransientFault
        from repro.store.spill import merge_sorted_runs

        runs = [
            (np.arange(0, 100, 2, dtype=np.int64), np.ones(50)),
            (np.arange(1, 100, 2, dtype=np.int64), np.ones(50)),
        ]
        plan = FaultPlan([FaultSpec("spill.merge", hits=(1,))])
        with fault_injection(plan):
            with pytest.raises(TransientFault):
                list(merge_sorted_runs(runs, chunk_entries=32))


class TestRetryPolicyThreading:
    def test_custom_policy_reaches_the_dispatch_layer(self, inputs):
        dataset, workload = inputs
        base = dataset.as_source(backend="record")
        source = ShardedRecordSource.from_record_source(
            base, shards=4, workers=2, retry_policy=RetryPolicy(max_attempts=1)
        )
        plan = FaultPlan([FaultSpec("shards.task", hits=(1,))])
        with fault_injection(plan):
            with pytest.raises(ShardError, match="1 attempt"):
                release_marginals(source, workload, budget=1.0, strategy="Q", rng=21)


class TestFaultPlanProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        hits=st.sets(st.integers(min_value=1, max_value=8), min_size=1, max_size=2),
        seed=st.integers(min_value=0, max_value=2**16),
        site=st.sampled_from(["shards.task", "store.read"]),
    )
    def test_any_retryable_fault_plan_leaves_release_bytes_unchanged(
        self, inputs, clean_pin, hits, seed, site
    ):
        """Property: a FaultPlan whose faults stay within the retry budget
        (no more than 2 scheduled hits, 3 attempts per shard) never changes
        the released bytes."""
        dataset, workload = inputs
        plan = FaultPlan([FaultSpec(site, hits=tuple(sorted(hits)))], seed=seed)
        with fault_injection(plan):
            pin = _release_fingerprint(dataset, workload, shards=4, workers=2)
        assert pin == clean_pin
