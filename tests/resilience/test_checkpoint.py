"""Release checkpoints: crash-safe staging, binding guards, fingerprints."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import synthetic_nltcs
from repro.exceptions import CheckpointError
from repro.mechanisms import PrivacyBudget
from repro.plan import Planner
from repro.queries import all_k_way
from repro.resilience import ReleaseCheckpoint, plan_fingerprint
from repro.resilience.checkpoint import MANIFEST_FILE
from repro.strategies import query_strategy


@pytest.fixture
def checkpoint(tmp_path):
    return ReleaseCheckpoint(tmp_path / "ckpt")


FP = "a" * 64
OTHER_FP = "b" * 64


class TestBinding:
    def test_fresh_directory_records_the_fingerprint(self, tmp_path):
        store = ReleaseCheckpoint(tmp_path / "ckpt")
        store.bind(FP, resume=False)
        assert store.fingerprint == FP
        # A reopened instance sees the persisted binding.
        assert ReleaseCheckpoint(tmp_path / "ckpt").fingerprint == FP

    def test_fingerprint_mismatch_is_a_targeted_error(self, checkpoint):
        checkpoint.bind(FP, resume=False)
        with pytest.raises(CheckpointError, match="different release"):
            checkpoint.bind(OTHER_FP, resume=False)

    def test_entries_without_resume_are_refused(self, checkpoint):
        checkpoint.bind(FP, resume=False)
        checkpoint.store(0b11, np.arange(4, dtype=np.float64))
        reopened = ReleaseCheckpoint(checkpoint.directory)
        with pytest.raises(CheckpointError, match="--resume"):
            reopened.bind(FP, resume=False)
        reopened.bind(FP, resume=True)  # with resume it binds fine

    def test_non_directory_path_is_rejected(self, tmp_path):
        target = tmp_path / "file"
        target.write_text("x")
        with pytest.raises(CheckpointError, match="not a directory"):
            ReleaseCheckpoint(target)


class TestEntries:
    def test_store_load_round_trip_is_bitwise(self, checkpoint):
        value = np.random.default_rng(3).random(8)
        checkpoint.store(0b101, value)
        loaded = checkpoint.load(0b101)
        assert loaded is not None
        assert loaded.tobytes() == np.ascontiguousarray(value).tobytes()
        assert checkpoint.has(0b101)
        assert checkpoint.masks() == [0b101]

    def test_missing_entry_loads_none(self, checkpoint):
        assert checkpoint.load(0b111) is None

    def test_corrupt_entry_loads_none_and_forces_remeasure(self, checkpoint):
        checkpoint.store(0b11, np.arange(4, dtype=np.float64))
        (entry_file,) = checkpoint.directory.glob("m*.npy")
        data = bytearray(entry_file.read_bytes())
        data[-1] ^= 0xFF  # flip one payload byte; header stays valid
        entry_file.write_bytes(bytes(data))
        assert ReleaseCheckpoint(checkpoint.directory).load(0b11) is None

    def test_truncated_entry_loads_none(self, checkpoint):
        checkpoint.store(0b11, np.arange(4, dtype=np.float64))
        (entry_file,) = checkpoint.directory.glob("m*.npy")
        with open(entry_file, "r+b") as handle:
            handle.truncate(16)
        assert ReleaseCheckpoint(checkpoint.directory).load(0b11) is None

    def test_no_temp_files_survive_a_store(self, checkpoint):
        for mask in (0b1, 0b10, 0b11):
            checkpoint.store(mask, np.arange(4, dtype=np.float64))
        leftovers = list(checkpoint.directory.glob("*.tmp"))
        assert leftovers == []

    def test_clear_drops_entries_but_keeps_the_binding(self, checkpoint):
        checkpoint.bind(FP, resume=False)
        checkpoint.store(0b1, np.arange(2, dtype=np.float64))
        checkpoint.clear()
        assert checkpoint.entry_count == 0
        assert checkpoint.fingerprint == FP
        assert list(checkpoint.directory.glob("m*.npy")) == []


class TestManifest:
    def test_corrupt_manifest_is_a_targeted_error(self, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / MANIFEST_FILE).write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt checkpoint manifest"):
            ReleaseCheckpoint(directory)

    def test_foreign_format_tag_is_rejected(self, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / MANIFEST_FILE).write_text(
            json.dumps({"format": "something/else", "entries": {}})
        )
        with pytest.raises(CheckpointError, match="format"):
            ReleaseCheckpoint(directory)

    def test_future_format_version_is_rejected(self, tmp_path):
        directory = tmp_path / "ckpt"
        directory.mkdir()
        (directory / MANIFEST_FILE).write_text(
            json.dumps(
                {
                    "format": "repro.resilience/checkpoint",
                    "format_version": 99,
                    "entries": {},
                }
            )
        )
        with pytest.raises(CheckpointError, match="format version"):
            ReleaseCheckpoint(directory)


class TestFingerprint:
    @pytest.fixture
    def inputs(self):
        dataset = synthetic_nltcs(400, rng=5)
        workload = all_k_way(dataset.schema, 2)
        return dataset, workload

    def _plan(self, workload, epsilon):
        return Planner(workload, query_strategy(workload)).plan(
            PrivacyBudget.pure(epsilon)
        )

    def test_same_configuration_same_fingerprint(self, inputs):
        dataset, workload = inputs
        source = dataset.as_source(backend="record")
        plan = self._plan(workload, 1.0)
        assert plan_fingerprint(plan, source) == plan_fingerprint(plan, source)

    def test_budget_changes_the_fingerprint(self, inputs):
        dataset, workload = inputs
        source = dataset.as_source(backend="record")
        assert plan_fingerprint(self._plan(workload, 1.0), source) != plan_fingerprint(
            self._plan(workload, 2.0), source
        )

    def test_data_changes_the_fingerprint(self, inputs):
        dataset, workload = inputs
        plan = self._plan(workload, 1.0)
        other = synthetic_nltcs(401, rng=5)
        assert plan_fingerprint(plan, dataset.as_source(backend="record")) != (
            plan_fingerprint(plan, other.as_source(backend="record"))
        )

    def test_machine_shape_does_not_change_the_fingerprint(self, inputs):
        # Worker/shard counts never change values, so a checkpoint taken on
        # one machine shape must resume on another.
        dataset, workload = inputs
        plan = self._plan(workload, 1.0)
        narrow = dataset.as_source(backend="record", shards=1, workers=1)
        wide = dataset.as_source(backend="record", shards=4, workers=4)
        assert plan_fingerprint(plan, narrow) == plan_fingerprint(plan, wide)
