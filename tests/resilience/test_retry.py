"""Retry policies: classification, schedules, and run() semantics."""

from __future__ import annotations

import pytest

from repro.exceptions import ResilienceError, TransientFault
from repro.resilience import NO_RETRY, RetryPolicy
from repro.resilience.retry import DEFAULT_RETRY_POLICY


class TestPolicyValidation:
    def test_needs_at_least_one_attempt(self):
        with pytest.raises(ResilienceError, match="at least one attempt"):
            RetryPolicy(max_attempts=0)

    def test_backoff_must_be_nonnegative(self):
        with pytest.raises(ResilienceError, match="non-negative"):
            RetryPolicy(backoff_base=-1.0)

    def test_default_classification(self):
        policy = DEFAULT_RETRY_POLICY
        assert policy.is_retryable(TransientFault("x"))
        assert policy.is_retryable(OSError("x"))
        assert not policy.is_retryable(ValueError("x"))

    def test_deterministic_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.1, backoff_factor=2.0)
        assert policy.delays() == pytest.approx((0.1, 0.2, 0.4))
        assert DEFAULT_RETRY_POLICY.delays() == (0.0, 0.0)


class TestRun:
    def test_recovers_from_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientFault("transient")
            return "ok"

        assert RetryPolicy(max_attempts=3).run(flaky) == "ok"
        assert len(calls) == 3

    def test_non_retryable_fails_fast(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("bug")

        with pytest.raises(ValueError, match="bug"):
            RetryPolicy(max_attempts=5).run(broken)
        assert len(calls) == 1

    def test_final_attempt_propagates_the_original_error(self):
        def always_transient():
            raise TransientFault("still down")

        with pytest.raises(TransientFault, match="still down"):
            RetryPolicy(max_attempts=2).run(always_transient)

    def test_no_retry_policy_raises_first_error(self):
        calls = []

        def flaky():
            calls.append(1)
            raise OSError("io")

        with pytest.raises(OSError):
            NO_RETRY.run(flaky)
        assert len(calls) == 1

    def test_on_retry_callback_sees_attempt_and_error(self):
        seen = []

        def flaky():
            if len(seen) < 1:
                raise OSError("io")
            return 42

        result = RetryPolicy(max_attempts=2).run(
            flaky, on_retry=lambda attempt, error: seen.append((attempt, str(error)))
        )
        assert result == 42
        assert seen == [(1, "io")]

    def test_arguments_are_forwarded(self):
        assert RetryPolicy().run(lambda a, b: a + b, 2, 3) == 5
