"""Backend-aware plan costing: decisions recorded, honoured, and value-free.

The cost model only ever changes *how* the marginal kernel computes its
exact values (root materialisation vs direct member passes) — never the
values.  These tests pin the decision logic per backend, that plans built
with a source carry the decisions, that the executor honours them, and that
forcing either decision produces bitwise-identical measurements.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import MarginalReleaseEngine
from repro.domain import Dataset, Schema
from repro.mechanisms import PrivacyBudget
from repro.plan import BatchCost, Planner, batched_marginals, cost_marginal_batches
from repro.plan.lattice import MarginalBatch
from repro.queries import all_k_way
from repro.shards import ShardedRecordSource
from repro.sources import DenseCubeSource, RecordSource
from repro.strategies import query_strategy

D = 8


@pytest.fixture
def dataset():
    schema = Schema.binary([f"a{i}" for i in range(D)])
    rng = np.random.default_rng(2)
    return Dataset(schema, (rng.random((500, D)) < 0.4).astype(np.int64))


@pytest.fixture
def workload(dataset):
    return all_k_way(dataset.schema, 2)


class TestDecisions:
    def test_dense_sources_always_prefer_the_root(self, dataset, workload):
        strategy = query_strategy(workload)
        planner = Planner(workload, strategy)
        source = dataset.as_source(backend="dense")
        costs = cost_marginal_batches(source, planner.batches)
        assert len(costs) == len(planner.batches)
        assert all(cost.use_root for cost in costs)
        assert all(cost.backend == "dense" for cost in costs)

    def test_record_source_goes_direct_when_the_root_is_too_wide(self):
        # 10 distinct records, one batch whose root has 2**7 = 128 cells:
        # two direct passes (~10 + 4 cells each) beat materialising 128.
        source = RecordSource(np.arange(10, dtype=np.int64), dimension=D)
        batch = MarginalBatch(root=0b1111111, members=(0b11, 0b1100000))
        (cost,) = cost_marginal_batches(source, [batch])
        assert not cost.use_root
        assert cost.direct_cost < cost.root_cost

    def test_trivial_batches_are_always_root(self):
        source = RecordSource(np.arange(4, dtype=np.int64), dimension=D)
        batch = MarginalBatch(root=0b11, members=(0b11,))
        (cost,) = cost_marginal_batches(source, [batch])
        assert cost.use_root

    def test_root_beyond_the_dense_limit_is_never_chosen(self):
        """Regression: a cheap-looking root the source would refuse to
        materialise (wider than limit_bits) must not be selected — the
        executor would otherwise hit the DataError mid-release."""
        # With 4096 records a 4-bit root (16 cells) is far cheaper than two
        # direct passes, but limit_bits=3 makes it unmaterialisable.
        source = RecordSource(
            np.arange(200, dtype=np.int64), dimension=D, limit_bits=3
        )
        batch = MarginalBatch(root=0b1111, members=(0b11, 0b1100))
        (cost,) = cost_marginal_batches(source, [batch])
        assert cost.root_cost < cost.direct_cost  # estimate alone says root
        assert not cost.use_root  # ... but the guard overrides it
        values = batched_marginals(source, [batch], D, costs=(cost,))
        assert set(values) == {0b11, 0b1100}  # executes without raising

    def test_sharded_cost_accounts_for_parallelism(self):
        codes = np.arange(4000, dtype=np.int64)
        serial = RecordSource(codes, dimension=13)
        parallel = ShardedRecordSource(codes, dimension=13, shards=4, workers=4)
        mask = 0b11
        # Four workers split the record pass; the estimate must be cheaper
        # than serial once the per-task overhead is amortised.
        assert parallel.marginal_cost(mask) < serial.marginal_cost(mask)

    def test_chosen_cost_matches_the_decision(self):
        cost = BatchCost(
            root=0b11, members=2, use_root=False,
            root_cost=10.0, direct_cost=4.0, backend="record",
        )
        assert cost.chosen_cost == 4.0


class TestPlansCarryDecisions:
    def test_plan_without_source_has_no_costs(self, dataset, workload):
        planner = Planner(workload, query_strategy(workload))
        plan = planner.plan(PrivacyBudget.pure(1.0))
        assert plan.batch_costs is None

    def test_plan_with_source_records_costs(self, dataset, workload):
        planner = Planner(workload, query_strategy(workload))
        source = dataset.as_source(backend="record")
        plan = planner.plan(PrivacyBudget.pure(1.0), source=source)
        assert plan.batch_costs is not None
        assert len(plan.batch_costs) == len(plan.batches)
        assert all(cost.backend == "record" for cost in plan.batch_costs)
        assert "est" in plan.describe()

    def test_engine_explain_reports_costs_and_layout(self, dataset, workload):
        engine = MarginalReleaseEngine(
            workload, "Q", backend="record", shards=3, workers=2
        )
        text = engine.explain(1.0, data=dataset)
        assert "source layout     : 3 shard(s)" in text
        assert "[root:" in text or "[direct:" in text
        # Without data the explanation stays data-independent.
        assert "source layout" not in engine.explain(1.0)

    def test_resolved_backend_accounts_for_the_shard_knob(self, workload):
        """Regression: an auto-policy engine with explicit shards releases
        on the sharded record backend — introspection must say so instead
        of reporting the dense default of the small domain."""
        from repro.exceptions import DataError

        engine = MarginalReleaseEngine(workload, "Q", shards=4)
        assert engine.resolved_backend == "record"
        assert MarginalReleaseEngine(workload, "Q").resolved_backend == "dense"
        with pytest.raises(DataError, match="dense"):
            MarginalReleaseEngine(workload, "Q", backend="dense", shards=4)


class TestDecisionsAreValueFree:
    def test_forced_root_and_forced_direct_are_bitwise_identical(
        self, dataset, workload
    ):
        strategy = query_strategy(workload)
        planner = Planner(workload, strategy)
        source = dataset.as_source(backend="record")
        batches = planner.batches

        def forced(use_root):
            costs = tuple(
                BatchCost(
                    root=batch.root,
                    members=len(batch.members),
                    use_root=use_root,
                    root_cost=0.0,
                    direct_cost=0.0,
                    backend="record",
                )
                for batch in batches
            )
            return batched_marginals(source, batches, D, costs=costs)

        via_root = forced(True)
        direct = forced(False)
        assert via_root.keys() == direct.keys()
        for mask in via_root:
            assert np.array_equal(via_root[mask], direct[mask])

    def test_release_identical_with_and_without_costed_plan(self, dataset, workload):
        source = dataset.as_source(backend="record")
        engine = MarginalReleaseEngine(workload, "Q", backend="record")
        plan_uncosted = engine.build_plan(1.0)
        plan_costed = engine.planner.plan(PrivacyBudget.pure(1.0), source=source)
        assert plan_costed.batch_costs is not None
        left = engine.executor.measure(plan_uncosted, source, rng=9)
        right = engine.executor.measure(plan_costed, source, rng=9)
        for label in left.values:
            assert np.array_equal(left.values[label], right.values[label])

    def test_dense_and_record_costed_plans_release_identically(
        self, dataset, workload
    ):
        releases = []
        for backend in ("dense", "record"):
            engine = MarginalReleaseEngine(workload, "Q", backend=backend)
            releases.append(engine.release(dataset, 1.0, rng=21))
        for left, right in zip(releases[0].marginals, releases[1].marginals):
            assert np.array_equal(left, right)

    def test_mismatched_cost_count_is_rejected(self, dataset, workload):
        from repro.exceptions import PlanError

        source = dataset.as_source(backend="record")
        planner = Planner(workload, query_strategy(workload))
        with pytest.raises(PlanError):
            batched_marginals(
                source,
                planner.batches,
                D,
                costs=(
                    BatchCost(
                        root=1, members=1, use_root=True,
                        root_cost=0.0, direct_cost=0.0, backend="record",
                    ),
                ) * (len(planner.batches) + 1),
            )

    def test_dense_default_cost_hooks(self):
        source = DenseCubeSource(np.ones(1 << 6), 6)
        assert source.marginal_cost(0b11) == float(1 << 6)
        assert source.derive_cost(0b1111, 0b11) == float(1 << 4)
