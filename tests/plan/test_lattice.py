"""Tests for the shared cuboid-lattice utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.plan.lattice import (
    CoveringIndex,
    MarginalBatch,
    ancestors_of,
    batch_assignment,
    covers,
    default_batch_bits,
    min_variance_source,
    plan_marginal_batches,
)
from repro.utils.bits import dominated_by, hamming_weight

SETTINGS = settings(max_examples=60, deadline=None)
mask_lists = st.lists(st.integers(1, 255), min_size=1, max_size=12, unique=True)


class TestContainment:
    def test_ancestors_of(self):
        assert ancestors_of(0b001, [0b011, 0b100, 0b101]) == [0b011, 0b101]

    def test_covers(self):
        assert covers(0b001, [0b011])
        assert not covers(0b001, [0b110])


class TestMinVarianceSource:
    def test_prefers_lower_expanded_variance(self):
        # Finer ancestor with high variance loses to a coarser, quieter one.
        variances = {0b011: 10.0, 0b111: 1.0}
        positions = {0b011: 0, 0b111: 1}
        best = min_variance_source(0b001, variances, positions)
        assert best is not None
        variance, expansion, source, position = best
        assert source == 0b111
        assert expansion == 4
        assert variance == pytest.approx(4.0)

    def test_tie_breaks_on_expansion_then_mask(self):
        variances = {0b011: 1.0, 0b101: 1.0}
        positions = {0b011: 0, 0b101: 1}
        best = min_variance_source(0b001, variances, positions)
        assert best[2] == 0b011  # equal variance and expansion: smaller mask

    def test_uncovered_returns_none(self):
        assert min_variance_source(0b100, {0b011: 1.0}, {0b011: 0}) is None


class TestCoveringIndex:
    """The precomputed index reproduces the scalar lattice scans exactly."""

    def test_masks_are_popcount_sorted(self):
        index = CoveringIndex({0b111: 0, 0b001: 1, 0b110: 2, 0b010: 3})
        assert index.masks == (0b001, 0b010, 0b110, 0b111)
        assert len(index) == 4

    def test_ancestors_preserve_positions_order(self):
        positions = {0b101: 0, 0b011: 1, 0b111: 2}
        index = CoveringIndex(positions)
        assert index.ancestors(0b001) == ancestors_of(0b001, positions)

    def test_best_source_requires_variances(self):
        with pytest.raises(ValueError, match="cell variances"):
            CoveringIndex({0b11: 0}).best_source(0b01)

    def test_empty_index(self):
        index = CoveringIndex({})
        assert not index.covers(0b1)
        assert index.ancestors(0b1) == []

    @SETTINGS
    @given(
        masks=mask_lists,
        variance_seed=st.integers(0, 2**16),
        query=st.integers(0, 255),
        exclude_bits=st.integers(0, 2**12 - 1),
    )
    def test_property_matches_scalar_scans(
        self, masks, variance_seed, query, exclude_bits
    ):
        import numpy as np

        rng = np.random.default_rng(variance_seed)
        positions = {mask: position for position, mask in enumerate(masks)}
        # Near-tie variances on purpose: a handful of distinct values over up
        # to 12 cuboids forces equal-variance tie-breaks through expansion,
        # mask and position — where a sloppy vectorisation would diverge.
        choices = rng.uniform(0.5, 2.0, size=3)
        variances = {
            mask: float(choices[rng.integers(len(choices))]) for mask in masks
        }
        exclude = frozenset(
            mask for bit, mask in enumerate(masks) if (exclude_bits >> bit) & 1
        )
        index = CoveringIndex(positions, variances)

        assert index.ancestors(query) == ancestors_of(query, positions)
        assert index.covers(query) == covers(query, positions)
        kept = {m: p for m, p in positions.items() if m not in exclude}
        assert index.covers(query, exclude=exclude) == covers(query, kept)
        assert index.best_source(query) == min_variance_source(
            query, variances, positions
        )
        assert index.best_source(query, exclude=exclude) == min_variance_source(
            query, variances, kept
        )


class TestMarginalBatches:
    def test_batches_cover_every_mask_once(self):
        masks = [0b0011, 0b0101, 0b1100, 0b1010]
        batches = plan_marginal_batches(masks, 4)
        members = [m for batch in batches for m in batch.members]
        assert sorted(members) == sorted(masks)
        for batch in batches:
            for member in batch.members:
                assert dominated_by(member, batch.root)

    def test_direct_containment_rides_free(self):
        # The 1-way masks are dominated by the 3-way mask: one batch, one pass.
        batches = plan_marginal_batches([0b111, 0b001, 0b010], 6)
        assert len(batches) == 1
        assert batches[0].root == 0b111
        assert set(batches[0].members) == {0b111, 0b001, 0b010}

    def test_max_bits_limits_union_growth(self):
        masks = [0b000011, 0b001100, 0b110000]
        batches = plan_marginal_batches(masks, 6, max_bits=2)
        # No unions allowed beyond 2 bits: every mask is its own batch.
        assert len(batches) == 3
        assert all(batch.is_trivial for batch in batches)

    def test_union_packing_reduces_full_passes(self):
        # All 2-way masks over 8 bits pack into far fewer than 28 batches.
        masks = [
            (1 << i) | (1 << j) for i in range(8) for j in range(i + 1, 8)
        ]
        batches = plan_marginal_batches(masks, 8)
        assert len(batches) < len(masks) / 2
        cap = default_batch_bits(8, masks)
        assert all(hamming_weight(batch.root) <= cap for batch in batches)

    def test_empty_input(self):
        assert plan_marginal_batches([], 4) == ()

    def test_batch_assignment(self):
        batches = (
            MarginalBatch(root=0b11, members=(0b11, 0b01)),
            MarginalBatch(root=0b100, members=(0b100,)),
        )
        assert batch_assignment(batches) == {0b11: 0, 0b01: 0, 0b100: 1}

    @SETTINGS
    @given(mask_lists)
    def test_property_batches_partition_masks(self, masks):
        batches = plan_marginal_batches(masks, 8)
        members = [m for batch in batches for m in batch.members]
        assert sorted(members) == sorted(masks)
        for batch in batches:
            assert all(dominated_by(member, batch.root) for member in batch.members)
            assert hamming_weight(batch.root) <= 8
