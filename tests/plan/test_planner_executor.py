"""Unit tests for the Planner / Executor split."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MarginalReleaseEngine
from repro.exceptions import PlanError, WorkloadError
from repro.mechanisms import PrivacyBudget
from repro.plan import Executor, Planner
from repro.queries import all_k_way
from repro.queries.matrix import strategy_matrix_from_masks
from repro.strategies import ExplicitMatrixStrategy, make_strategy, query_strategy


@pytest.fixture
def planner_q(workload_2way_5):
    return Planner(workload_2way_5, query_strategy(workload_2way_5))


class TestPlanner:
    def test_rejects_foreign_strategy(self, workload_2way_5, binary_schema_5):
        other = all_k_way(binary_schema_5, 1)
        with pytest.raises(WorkloadError):
            Planner(workload_2way_5, query_strategy(other))

    def test_groups_align_with_allocation(self, planner_q):
        plan = planner_q.plan(PrivacyBudget.pure(1.0))
        assert [g.label for g in plan.groups] == [
            g.label for g in plan.allocation.groups
        ]
        assert [g.budget for g in plan.groups] == list(plan.allocation.group_budgets)

    def test_groups_carry_masks_and_scales(self, planner_q):
        plan = planner_q.plan(PrivacyBudget.pure(1.0))
        assert plan.kind == "marginal"
        for group in plan.groups:
            assert group.mask is not None
            assert group.measured
            assert group.noise_scale == pytest.approx(1.0 / group.budget)

    def test_gaussian_scales(self, planner_q):
        plan = planner_q.plan(PrivacyBudget.approximate(1.0, 1e-6))
        sigma = np.sqrt(2.0 * np.log(2.0 / 1e-6))
        for group in plan.groups:
            assert group.noise_scale == pytest.approx(sigma / group.budget)

    def test_expected_variance_matches_allocation(self, planner_q):
        budget = PrivacyBudget.pure(0.7)
        plan = planner_q.plan(budget)
        assert plan.expected_total_variance() == pytest.approx(
            planner_q.allocation(budget).total_weighted_variance()
        )
        assert sum(plan.group_variances().values()) == pytest.approx(
            plan.expected_total_variance()
        )

    def test_plan_is_data_independent(self, planner_q, random_counts_5):
        plan = planner_q.plan(PrivacyBudget.pure(1.0))
        executor = Executor(planner_q.strategy)
        first = executor.measure(plan, random_counts_5, np.random.default_rng(0))
        second = executor.measure(plan, random_counts_5, np.random.default_rng(0))
        for label in first.values:
            assert np.array_equal(first.values[label], second.values[label])

    def test_fourier_plan_has_no_batches(self, workload_2way_5):
        planner = Planner(workload_2way_5, make_strategy("F", workload_2way_5))
        plan = planner.plan(PrivacyBudget.pure(1.0))
        assert plan.kind == "fourier"
        assert plan.batches == ()
        assert plan.measured_cells <= plan.total_cells

    def test_matrix_plan_carries_row_budgets(self, workload_2way_5):
        matrix = strategy_matrix_from_masks(
            workload_2way_5.masks, workload_2way_5.dimension
        )
        strategy = ExplicitMatrixStrategy(workload_2way_5, matrix, name="dense")
        plan = Planner(workload_2way_5, strategy).plan(PrivacyBudget.pure(1.0))
        assert plan.kind == "matrix"
        assert plan.row_budgets is not None
        assert plan.row_budgets.shape == (matrix.shape[0],)

    def test_describe_mentions_stages_and_groups(self, planner_q):
        text = planner_q.plan(PrivacyBudget.pure(1.0)).describe()
        assert "stage 1 — plan" in text
        assert "stage 2 — execute" in text
        assert "stage 3 — finalize" in text
        assert "batch" in text
        assert "marginal-0x" in text


class TestExecutor:
    def test_rejects_mismatched_kernel(self, workload_2way_5, random_counts_5):
        plan = Planner(workload_2way_5, query_strategy(workload_2way_5)).plan(
            PrivacyBudget.pure(1.0)
        )
        fourier_executor = Executor(make_strategy("F", workload_2way_5))
        with pytest.raises(PlanError):
            fourier_executor.measure(plan, random_counts_5)

    def test_noiseless_leaves_stream_untouched(self, planner_q, random_counts_5):
        executor = Executor(planner_q.strategy)
        plan = planner_q.plan(PrivacyBudget.pure(1.0))
        generator = np.random.default_rng(3)
        executor.measure(plan, random_counts_5, generator, noiseless=True)
        untouched = np.random.default_rng(3)
        assert generator.integers(0, 2**32) == untouched.integers(0, 2**32)

    def test_noiseless_equals_exact_marginals(self, planner_q, random_counts_5):
        executor = Executor(planner_q.strategy)
        plan = planner_q.plan(PrivacyBudget.pure(1.0))
        measurement = executor.measure(
            plan, random_counts_5, np.random.default_rng(0), noiseless=True
        )
        estimates = planner_q.strategy.estimate(measurement)
        for query, estimate in zip(plan.workload.queries, estimates):
            assert np.array_equal(estimate, query.evaluate(random_counts_5))


class _LegacyNoisyCounts:
    """A pre-refactor-style Strategy subclass: ABC methods only, no planner
    contract (query_masks / measurement_kind untouched)."""


def _make_legacy_strategy(workload):
    from typing import List, Optional, Sequence

    from repro.budget.grouping import GroupSpec
    from repro.domain.contingency import marginal_from_vector
    from repro.mechanisms.noise import laplace_noise, laplace_scale_for_budget
    from repro.strategies.base import Measurement, Strategy
    from repro.utils.rng import ensure_rng

    class LegacyStrategy(Strategy):
        inherently_consistent = True

        def group_specs(
            self, a: Optional[Sequence[float]] = None
        ) -> List[GroupSpec]:
            weights = self.resolve_query_weights(a)
            return [
                GroupSpec(
                    label="legacy",
                    size=self._workload.domain_size,
                    constant=1.0,
                    weight=float(self._workload.domain_size * weights.sum()),
                )
            ]

        def measure(self, x, allocation, rng=None) -> Measurement:
            vector = self.check_vector(x)
            self.check_allocation(allocation)
            generator = ensure_rng(rng)
            eta = allocation.budget_for("legacy")
            noise = laplace_noise(
                laplace_scale_for_budget(eta), vector.shape[0], generator
            )
            return Measurement(
                strategy_name=self._name,
                allocation=allocation,
                values={"legacy": vector + noise},
            )

        def estimate(self, measurement):
            noisy = measurement.group_values("legacy")
            return [
                marginal_from_vector(noisy, query.mask, self.dimension)
                for query in self._workload.queries
            ]

    return LegacyStrategy(workload, name="legacy")


class TestCustomKernelFallback:
    """Strategy subclasses without the planner contract keep working."""

    def test_planner_falls_back_to_custom_kind(self, workload_2way_5):
        strategy = _make_legacy_strategy(workload_2way_5)
        plan = Planner(workload_2way_5, strategy).plan(PrivacyBudget.pure(1.0))
        assert plan.kind == "custom"
        assert plan.batches == ()
        assert "strategy's own measure()" in plan.describe()

    def test_executor_delegates_to_strategy_measure(
        self, workload_2way_5, random_counts_5
    ):
        strategy = _make_legacy_strategy(workload_2way_5)
        planner = Planner(workload_2way_5, strategy)
        plan = planner.plan(PrivacyBudget.pure(1.0))
        direct = strategy.measure(
            random_counts_5, plan.allocation, np.random.default_rng(5)
        )
        via_plan = Executor(strategy).measure(
            plan, random_counts_5, np.random.default_rng(5)
        )
        assert np.array_equal(direct.values["legacy"], via_plan.values["legacy"])

    def test_engine_accepts_legacy_strategy(self, workload_2way_5, random_counts_5):
        strategy = _make_legacy_strategy(workload_2way_5)
        engine = MarginalReleaseEngine(workload_2way_5, strategy)
        result = engine.release(random_counts_5, 1.0, rng=0)
        assert len(result.marginals) == len(workload_2way_5)
        assert result.strategy_name == "legacy"

    def test_noiseless_custom_rejected(self, workload_2way_5, random_counts_5):
        strategy = _make_legacy_strategy(workload_2way_5)
        planner = Planner(workload_2way_5, strategy)
        plan = planner.plan(PrivacyBudget.pure(1.0))
        with pytest.raises(PlanError):
            Executor(strategy).measure(plan, random_counts_5, noiseless=True)


class TestWeightedConsistency:
    def test_plan_threads_resolved_weights_into_projection(
        self, workload_2way_5, random_counts_5
    ):
        from repro.recovery.consistency import make_consistent
        from repro.strategies import make_strategy

        weights = np.linspace(0.5, 2.0, len(workload_2way_5))
        engine = MarginalReleaseEngine(workload_2way_5, "Q", query_weights=weights)
        result = engine.release(random_counts_5, 1.0, rng=9)

        strategy = make_strategy("Q", workload_2way_5)
        allocation = engine.allocation(1.0)
        measurement = strategy.measure(
            random_counts_5, allocation, np.random.default_rng(9)
        )
        estimates = make_consistent(
            workload_2way_5, strategy.estimate(measurement), query_weights=weights
        ).marginals
        for released, expected in zip(result.marginals, estimates):
            assert np.array_equal(released, expected)


class TestEngineFacade:
    def test_engine_exposes_planner_and_executor(self, workload_2way_5):
        engine = MarginalReleaseEngine(workload_2way_5, "Q")
        assert engine.planner.strategy is engine.strategy
        assert engine.executor.strategy is engine.strategy

    def test_build_plan_and_explain(self, workload_2way_5):
        engine = MarginalReleaseEngine(workload_2way_5, "C")
        plan = engine.build_plan(0.5)
        assert plan.strategy_name == "C"
        assert "expected variance" in engine.explain(0.5)

    def test_release_reports_plan_variance(self, workload_2way_5, random_counts_5):
        engine = MarginalReleaseEngine(workload_2way_5, "Q")
        result = engine.release(random_counts_5, 1.0, rng=0)
        assert result.expected_total_variance == pytest.approx(
            engine.build_plan(1.0).expected_total_variance()
        )
