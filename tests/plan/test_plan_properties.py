"""Property tests: the plan path is equivalent to the legacy per-query path.

Three invariants pin the plan → execute → finalize refactor:

* **noiseless exactness** — executing any workload through the Executor with
  noise disabled reproduces ``marginal_from_vector`` per query (batched
  subset sums derive coarse marginals from batch roots, which is exact for
  integer count vectors);
* **variance bookkeeping** — the plan's expected-variance accounting matches
  :class:`~repro.budget.allocation.NoiseAllocation` exactly;
* **seeded equivalence** — with the same generator state, the batched
  executor produces bitwise the same measurement as the legacy
  ``Strategy.measure`` loop (the plan's single-stream seed policy), and
  ``MarginalReleaseEngine.release`` reproduces the legacy hand-wired
  pipeline bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import MarginalReleaseEngine
from repro.domain import Schema
from repro.domain.contingency import marginal_from_vector
from repro.mechanisms import PrivacyBudget
from repro.plan import Executor, Planner
from repro.queries import MarginalQuery, MarginalWorkload
from repro.recovery.consistency import make_consistent
from repro.strategies import make_strategy

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

D = 5
workload_masks = st.lists(st.integers(1, 31), min_size=1, max_size=6, unique=True)
count_vectors = st.lists(st.integers(0, 40), min_size=32, max_size=32)
epsilons = st.floats(min_value=0.05, max_value=4.0)
strategy_names = st.sampled_from(["I", "Q", "F", "C"])
seeds = st.integers(0, 2**32 - 1)


def make_workload(masks):
    schema = Schema.binary(["a", "b", "c", "d", "e"])
    return MarginalWorkload(
        schema, [MarginalQuery(mask, D) for mask in masks], name="random"
    )


class TestNoiselessExactness:
    @SETTINGS
    @given(workload_masks, count_vectors, strategy_names)
    def test_executor_reproduces_marginal_from_vector(self, masks, counts, name):
        workload = make_workload(masks)
        strategy = make_strategy(name, workload)
        planner = Planner(workload, strategy)
        plan = planner.plan(PrivacyBudget.pure(1.0))
        x = np.array(counts, dtype=np.float64)
        measurement = Executor(strategy).measure(plan, x, noiseless=True)
        estimates = strategy.estimate(measurement)
        for query, estimate in zip(workload.queries, estimates):
            expected = marginal_from_vector(x, query.mask, D)
            if name == "F":
                # Fourier reconstruction is exact up to transform round-off.
                assert np.allclose(estimate, expected, atol=1e-8)
            else:
                # Batched subset sums of integer counts are exact.
                assert np.array_equal(estimate, expected)


class TestVarianceBookkeeping:
    @SETTINGS
    @given(workload_masks, epsilons, strategy_names)
    def test_plan_matches_noise_allocation(self, masks, epsilon, name):
        workload = make_workload(masks)
        strategy = make_strategy(name, workload)
        planner = Planner(workload, strategy)
        budget = PrivacyBudget.pure(epsilon)
        plan = planner.plan(budget)
        allocation = planner.allocation(budget)
        assert plan.expected_total_variance() == allocation.total_weighted_variance()
        assert [g.budget for g in plan.groups] == list(allocation.group_budgets)
        assert sum(plan.group_variances().values()) == pytest.approx(
            allocation.total_weighted_variance()
        )

    @SETTINGS
    @given(workload_masks, epsilons, strategy_names)
    def test_approximate_budgets_too(self, masks, epsilon, name):
        workload = make_workload(masks)
        planner = Planner(workload, make_strategy(name, workload))
        budget = PrivacyBudget.approximate(epsilon, 1e-6)
        plan = planner.plan(budget)
        assert plan.expected_total_variance() == pytest.approx(
            planner.allocation(budget).total_weighted_variance()
        )


class TestSeededEquivalence:
    @SETTINGS
    @given(workload_masks, count_vectors, epsilons, strategy_names, seeds)
    def test_executor_matches_legacy_measure(self, masks, counts, epsilon, name, seed):
        workload = make_workload(masks)
        strategy = make_strategy(name, workload)
        planner = Planner(workload, strategy)
        plan = planner.plan(PrivacyBudget.pure(epsilon))
        x = np.array(counts, dtype=np.float64)
        legacy = strategy.measure(x, plan.allocation, np.random.default_rng(seed))
        batched = Executor(strategy).measure(plan, x, np.random.default_rng(seed))
        assert set(legacy.values) == set(batched.values)
        for label in legacy.values:
            assert np.array_equal(
                legacy.values[label], batched.values[label], equal_nan=True
            )

    @SETTINGS
    @given(workload_masks, count_vectors, epsilons, strategy_names, seeds)
    def test_release_matches_legacy_pipeline(self, masks, counts, epsilon, name, seed):
        workload = make_workload(masks)
        engine = MarginalReleaseEngine(workload, name)
        x = np.array(counts, dtype=np.float64)
        result = engine.release(x, epsilon, rng=seed)

        strategy = make_strategy(name, workload)
        allocation = engine.allocation(epsilon)
        measurement = strategy.measure(x, allocation, np.random.default_rng(seed))
        estimates = strategy.estimate(measurement)
        if not strategy.inherently_consistent:
            estimates = make_consistent(workload, estimates).marginals
        for released, legacy in zip(result.marginals, estimates):
            assert np.array_equal(released, legacy)
