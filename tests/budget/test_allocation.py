"""Tests for uniform and optimal noise-budget allocation (Section 3.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.budget.allocation import (
    NoiseAllocation,
    allocation_for,
    optimal_allocation,
    predicted_total_variance,
    uniform_allocation,
)
from repro.budget.grouping import GroupSpec
from repro.exceptions import BudgetError
from repro.mechanisms import PrivacyBudget


def make_groups(weights, constants=None, sizes=None):
    constants = constants or [1.0] * len(weights)
    sizes = sizes or [1] * len(weights)
    return [
        GroupSpec(label=f"g{i}", size=sizes[i], constant=constants[i], weight=weights[i])
        for i in range(len(weights))
    ]


group_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.1, max_value=1000.0),
        st.floats(min_value=0.01, max_value=10.0),
    ),
    min_size=1,
    max_size=8,
)


class TestUniformAllocation:
    def test_common_budget_is_epsilon_over_sensitivity(self):
        groups = make_groups([2.0, 4.0])
        allocation = uniform_allocation(groups, PrivacyBudget.pure(1.0))
        assert np.allclose(allocation.group_budgets, 0.5)
        assert allocation.verify_privacy()

    def test_gaussian_uses_l2_sensitivity(self):
        groups = make_groups([1.0, 1.0], constants=[1.0, 1.0])
        allocation = uniform_allocation(groups, PrivacyBudget.approximate(1.0, 1e-6))
        assert np.allclose(allocation.group_budgets, 1.0 / math.sqrt(2.0))
        assert allocation.verify_privacy()

    def test_empty_groups_rejected(self):
        with pytest.raises(BudgetError):
            uniform_allocation([], PrivacyBudget.pure(1.0))


class TestOptimalAllocationPure:
    def test_intro_example_without_recovery_change(self):
        """The introduction: S = Q with groups of weight 2 (marginal on A) and
        4 (marginal on A,B) gives total variance 46.17/eps**2, down from the
        uniform 48/eps**2."""
        groups = make_groups([2.0, 4.0], sizes=[2, 4])
        eps = 1.0
        uniform = uniform_allocation(groups, PrivacyBudget.pure(eps))
        optimal = optimal_allocation(groups, PrivacyBudget.pure(eps))
        assert uniform.total_weighted_variance() == pytest.approx(48.0, rel=1e-6)
        assert optimal.total_weighted_variance() == pytest.approx(46.17, rel=1e-3)
        # The optimal budgets are close to the 4 eps / 9 and 5 eps / 9 the
        # paper quotes for illustration (the exact optimum is (2/(2+4^(1/3)...))
        # and attains a marginally smaller objective).
        assert optimal.budget_for("g0") == pytest.approx(4.0 / 9.0, rel=0.01)
        assert optimal.budget_for("g1") == pytest.approx(5.0 / 9.0, rel=0.01)
        assert optimal.total_weighted_variance() <= 46.17 + 1e-6

    def test_budget_constraint_tight(self):
        groups = make_groups([1.0, 10.0, 100.0], constants=[1.0, 2.0, 0.5])
        allocation = optimal_allocation(groups, PrivacyBudget.pure(0.7))
        spent = sum(g.constant * eta for g, eta in zip(allocation.groups, allocation.group_budgets))
        assert spent == pytest.approx(0.7)
        assert allocation.verify_privacy()

    def test_closed_form_matches_corollary_33(self):
        """Corollary 3.3 with equal constants C: objective C^2 (sum s^(1/3))^3
        (paper's s includes the factor 2 we keep in the variance constant)."""
        weights = [3.0, 5.0, 11.0]
        constant = 0.25
        eps = 2.0
        groups = make_groups(weights, constants=[constant] * 3)
        allocation = optimal_allocation(groups, PrivacyBudget.pure(eps))
        expected = 2.0 * constant**2 * sum(w ** (1.0 / 3.0) for w in weights) ** 3 / eps**2
        assert allocation.total_weighted_variance() == pytest.approx(expected)
        assert predicted_total_variance(groups, PrivacyBudget.pure(eps)) == pytest.approx(expected)

    def test_zero_weight_group_gets_zero_budget(self):
        groups = make_groups([0.0, 4.0])
        allocation = optimal_allocation(groups, PrivacyBudget.pure(1.0))
        assert allocation.budget_for("g0") == 0.0
        assert allocation.budget_for("g1") == pytest.approx(1.0)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(BudgetError):
            optimal_allocation(make_groups([0.0, 0.0]), PrivacyBudget.pure(1.0))

    def test_equal_groups_reduce_to_uniform(self):
        groups = make_groups([5.0, 5.0, 5.0])
        optimal = optimal_allocation(groups, PrivacyBudget.pure(1.0))
        uniform = uniform_allocation(groups, PrivacyBudget.pure(1.0))
        assert np.allclose(optimal.group_budgets, uniform.group_budgets)

    @settings(max_examples=60, deadline=None)
    @given(group_lists, st.floats(min_value=0.05, max_value=5.0))
    def test_never_worse_than_uniform(self, params, eps):
        groups = make_groups([w for w, _ in params], constants=[c for _, c in params])
        budget = PrivacyBudget.pure(eps)
        optimal = optimal_allocation(groups, budget)
        uniform = uniform_allocation(groups, budget)
        assert optimal.total_weighted_variance() <= uniform.total_weighted_variance() * (1 + 1e-9)
        assert optimal.verify_privacy()
        assert uniform.verify_privacy()

    @settings(max_examples=60, deadline=None)
    @given(group_lists, st.floats(min_value=0.05, max_value=5.0))
    def test_predicted_matches_attained(self, params, eps):
        groups = make_groups([w for w, _ in params], constants=[c for _, c in params])
        budget = PrivacyBudget.pure(eps)
        for non_uniform in (True, False):
            allocation = allocation_for(groups, budget, non_uniform=non_uniform)
            assert allocation.total_weighted_variance() == pytest.approx(
                predicted_total_variance(groups, budget, non_uniform=non_uniform), rel=1e-9
            )

    @settings(max_examples=40, deadline=None)
    @given(group_lists)
    def test_scaling_with_epsilon(self, params):
        """Total variance scales as 1/eps**2 for any fixed group structure."""
        groups = make_groups([w for w, _ in params], constants=[c for _, c in params])
        var_1 = optimal_allocation(groups, PrivacyBudget.pure(1.0)).total_weighted_variance()
        var_2 = optimal_allocation(groups, PrivacyBudget.pure(2.0)).total_weighted_variance()
        assert var_1 == pytest.approx(4.0 * var_2, rel=1e-9)


class TestOptimalAllocationApproximate:
    def test_budget_constraint_tight(self):
        groups = make_groups([1.0, 7.0], constants=[2.0, 0.3])
        budget = PrivacyBudget.approximate(0.9, 1e-6)
        allocation = optimal_allocation(groups, budget)
        spent_sq = sum(
            (g.constant * eta) ** 2 for g, eta in zip(allocation.groups, allocation.group_budgets)
        )
        assert math.sqrt(spent_sq) == pytest.approx(0.9)

    def test_closed_form_matches_corollary_33(self):
        """(eps, delta) case: objective 2 log(2/delta) C^2 (sum sqrt(s))^2 / eps^2."""
        weights = [2.0, 8.0]
        constant = 0.5
        eps, delta = 1.5, 1e-5
        groups = make_groups(weights, constants=[constant] * 2)
        allocation = optimal_allocation(groups, PrivacyBudget.approximate(eps, delta))
        expected = (
            2.0
            * math.log(2.0 / delta)
            * constant**2
            * sum(math.sqrt(w) for w in weights) ** 2
            / eps**2
        )
        assert allocation.total_weighted_variance() == pytest.approx(expected)

    @settings(max_examples=40, deadline=None)
    @given(group_lists, st.floats(min_value=0.05, max_value=5.0))
    def test_never_worse_than_uniform(self, params, eps):
        groups = make_groups([w for w, _ in params], constants=[c for _, c in params])
        budget = PrivacyBudget.approximate(eps, 1e-6)
        optimal = optimal_allocation(groups, budget)
        uniform = uniform_allocation(groups, budget)
        assert optimal.total_weighted_variance() <= uniform.total_weighted_variance() * (1 + 1e-9)


class TestNoiseAllocationContainer:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(BudgetError):
            NoiseAllocation(
                groups=tuple(make_groups([1.0, 2.0])),
                group_budgets=(1.0,),
                budget=PrivacyBudget.pure(1.0),
                kind="optimal",
            )

    def test_negative_budgets_rejected(self):
        with pytest.raises(BudgetError):
            NoiseAllocation(
                groups=tuple(make_groups([1.0])),
                group_budgets=(-0.1,),
                budget=PrivacyBudget.pure(1.0),
                kind="optimal",
            )

    def test_budget_lookup(self):
        allocation = uniform_allocation(make_groups([1.0, 2.0]), PrivacyBudget.pure(1.0))
        assert allocation.budget_for("g1") == pytest.approx(0.5)
        assert set(allocation.budgets_by_label()) == {"g0", "g1"}
        with pytest.raises(BudgetError):
            allocation.budget_for("missing")

    def test_mechanism_name(self):
        pure = uniform_allocation(make_groups([1.0]), PrivacyBudget.pure(1.0))
        approx = uniform_allocation(make_groups([1.0]), PrivacyBudget.approximate(1.0, 1e-6))
        assert pure.mechanism == "laplace"
        assert approx.mechanism == "gaussian"

    def test_noise_variance_for_zero_budget_is_infinite(self):
        groups = make_groups([0.0, 1.0])
        allocation = optimal_allocation(groups, PrivacyBudget.pure(1.0))
        assert math.isinf(allocation.noise_variance_for("g0"))
        assert allocation.total_weighted_variance() < math.inf
