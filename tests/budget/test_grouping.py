"""Tests for the grouping property (Definition 3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.budget.grouping import (
    GroupSpec,
    greedy_grouping,
    group_constant,
    group_specs_from_matrices,
    row_recovery_weights,
    satisfies_grouping_property,
)
from repro.exceptions import GroupingError
from repro.queries import all_k_way
from repro.queries.matrix import (
    fourier_basis_matrix,
    marginal_operator_matrix,
    strategy_matrix_from_masks,
    workload_matrix,
)


class TestGroupSpec:
    def test_valid(self):
        spec = GroupSpec(label="g", size=4, constant=1.0, weight=8.0)
        assert spec.size == 4

    def test_invalid_size(self):
        with pytest.raises(GroupingError):
            GroupSpec(label="g", size=0, constant=1.0, weight=1.0)

    def test_invalid_constant(self):
        with pytest.raises(GroupingError):
            GroupSpec(label="g", size=1, constant=0.0, weight=1.0)

    def test_negative_weight(self):
        with pytest.raises(GroupingError):
            GroupSpec(label="g", size=1, constant=1.0, weight=-1.0)


class TestGreedyGrouping:
    def test_identity_single_group(self):
        """The paper: S = I has grouping number 1."""
        groups = greedy_grouping(np.eye(16))
        assert len(groups) == 1
        assert sorted(groups[0]) == list(range(16))

    def test_single_marginal_single_group(self):
        matrix = marginal_operator_matrix(0b011, 4)
        assert len(greedy_grouping(matrix)) == 1

    def test_collection_of_marginals_one_group_each(self):
        """The paper: a collection of marginals groups by marginal."""
        masks = [0b0011, 0b1100, 0b0110]
        matrix = strategy_matrix_from_masks(masks, 4)
        groups = greedy_grouping(matrix)
        assert len(groups) == len(masks)

    def test_figure_1b_grouping_number_two(self, paper_example_workload):
        """The paper's example: the Figure 1(b) query matrix has grouping number 2."""
        matrix = workload_matrix(paper_example_workload)
        groups = greedy_grouping(matrix)
        assert len(groups) == 2
        assert satisfies_grouping_property(matrix, groups)

    def test_fourier_every_row_its_own_group(self):
        """The paper: the Fourier matrix is dense, so each row is a group."""
        matrix = fourier_basis_matrix(3)
        groups = greedy_grouping(matrix)
        assert len(groups) == 8
        assert all(len(g) == 1 for g in groups)

    def test_zero_row_rejected(self):
        matrix = np.vstack([np.eye(3), np.zeros((1, 3))])
        with pytest.raises(GroupingError):
            greedy_grouping(matrix)

    def test_mixed_magnitudes_not_grouped_together(self):
        matrix = np.array([[1.0, 0.0], [0.0, 2.0]])
        groups = greedy_grouping(matrix)
        assert len(groups) == 2

    def test_row_with_unequal_entries_is_singleton(self):
        matrix = np.array([[1.0, 2.0], [0.0, 1.0]])
        groups = greedy_grouping(matrix)
        assert [0] in groups and len(groups) == 2


class TestSatisfiesGroupingProperty:
    def test_valid_partition(self):
        matrix = strategy_matrix_from_masks([0b01, 0b10], 2)
        groups = [[0, 1], [2, 3]]
        assert satisfies_grouping_property(matrix, groups)

    def test_overlapping_supports_fail(self):
        matrix = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 1.0]])
        assert not satisfies_grouping_property(matrix, [[0, 1]])

    def test_incomplete_partition_fails(self):
        matrix = np.eye(3)
        assert not satisfies_grouping_property(matrix, [[0, 1]])

    def test_duplicated_rows_fail(self):
        matrix = np.eye(3)
        assert not satisfies_grouping_property(matrix, [[0, 1], [1, 2]])

    def test_partial_cover_allowed_when_not_strict(self):
        # A group that does not touch every column violates the strict
        # definition but is fine for feasibility.
        matrix = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [1.0, 1.0, 1.0]])
        groups = [[0, 1], [2], [3]]
        assert not satisfies_grouping_property(matrix, groups)
        assert satisfies_grouping_property(matrix, groups, require_full_cover=False)


class TestGroupSummaries:
    def test_group_constant(self):
        matrix = np.array([[0.0, 0.5, 0.0], [0.5, 0.0, 0.0]])
        assert group_constant(matrix, [0, 1]) == 0.5

    def test_group_constant_empty_support(self):
        with pytest.raises(GroupingError):
            group_constant(np.zeros((2, 3)), [0])

    def test_row_recovery_weights_uniform_a(self):
        recovery = np.array([[1.0, 0.0], [0.5, 0.5], [0.0, 1.0]])
        weights = row_recovery_weights(recovery)
        assert np.allclose(weights, [1.0 + 0.25, 0.25 + 1.0])

    def test_row_recovery_weights_with_a(self):
        recovery = np.array([[1.0, 0.0], [0.0, 2.0]])
        weights = row_recovery_weights(recovery, a=np.array([3.0, 0.5]))
        assert np.allclose(weights, [3.0, 2.0])

    def test_row_recovery_weights_rejects_negative_a(self):
        with pytest.raises(GroupingError):
            row_recovery_weights(np.eye(2), a=np.array([-1.0, 1.0]))

    def test_group_specs_from_matrices(self, paper_example_workload):
        """S = Q for the worked example: groups (A) and (A,B) with weights 2 and 4."""
        q = workload_matrix(paper_example_workload)
        groups = greedy_grouping(q)
        specs = group_specs_from_matrices(q, np.eye(6), groups)
        by_size = sorted(specs, key=lambda s: s.size)
        assert by_size[0].size == 2 and by_size[0].weight == pytest.approx(2.0)
        assert by_size[1].size == 4 and by_size[1].weight == pytest.approx(4.0)
        assert all(spec.constant == 1.0 for spec in specs)

    def test_group_specs_shape_validation(self):
        with pytest.raises(GroupingError):
            group_specs_from_matrices(np.eye(3), np.eye(4), [[0, 1, 2]])
