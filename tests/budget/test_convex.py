"""Tests for the general convex budgeting solver and its agreement with the
closed-form group solution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.budget.allocation import optimal_allocation, uniform_allocation
from repro.budget.convex import solve_budget_problem
from repro.budget.grouping import (
    greedy_grouping,
    group_specs_from_matrices,
    row_recovery_weights,
)
from repro.exceptions import BudgetError
from repro.mechanisms import PrivacyBudget
from repro.mechanisms.sensitivity import weighted_l1_column_bound
from repro.queries.matrix import workload_matrix


class TestSolverBasics:
    def test_single_row(self):
        strategy = np.ones((1, 4))
        solution = solve_budget_problem(strategy, np.array([3.0]), epsilon=2.0)
        assert solution.converged
        # With a single row the whole budget goes to it.
        assert solution.epsilons[0] == pytest.approx(2.0, rel=1e-4)
        assert solution.objective == pytest.approx(2.0 * 3.0 / 4.0, rel=1e-3)

    def test_constraints_respected(self):
        rng = np.random.default_rng(0)
        strategy = rng.integers(0, 2, size=(6, 10)).astype(float)
        strategy[strategy.sum(axis=1) == 0, 0] = 1.0
        weights = rng.uniform(0.5, 5.0, size=6)
        epsilon = 1.3
        solution = solve_budget_problem(strategy, weights, epsilon)
        assert weighted_l1_column_bound(strategy, solution.epsilons) <= epsilon * (1 + 1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(BudgetError):
            solve_budget_problem(np.eye(3), np.ones(2), 1.0)
        with pytest.raises(BudgetError):
            solve_budget_problem(np.eye(3), -np.ones(3), 1.0)
        with pytest.raises(BudgetError):
            solve_budget_problem(np.eye(3), np.ones(3), 0.0)
        with pytest.raises(BudgetError):
            solve_budget_problem(np.zeros((2, 2)), np.ones(2), 1.0)
        with pytest.raises(BudgetError):
            solve_budget_problem(np.eye(2), np.zeros(2), 1.0)


class TestAgreementWithClosedForm:
    def test_intro_example(self, paper_example_workload):
        """For S = Q of the worked example the convex solver reaches the same
        46.17/eps^2 optimum as the closed-form group allocation."""
        strategy = workload_matrix(paper_example_workload)
        recovery = np.eye(6)
        weights = row_recovery_weights(recovery)
        epsilon = 1.0
        solution = solve_budget_problem(strategy, weights, epsilon)
        groups = greedy_grouping(strategy)
        specs = group_specs_from_matrices(strategy, recovery, groups)
        closed = optimal_allocation(specs, PrivacyBudget.pure(epsilon))
        assert solution.objective == pytest.approx(
            closed.total_weighted_variance(), rel=1e-3
        )

    def test_identity_strategy(self):
        """For S = I the optimum is the uniform allocation."""
        strategy = np.eye(8)
        weights = np.full(8, 2.0)
        epsilon = 0.8
        solution = solve_budget_problem(strategy, weights, epsilon)
        groups = greedy_grouping(strategy)
        specs = group_specs_from_matrices(strategy, np.eye(8) * np.sqrt(2.0), groups)
        closed = uniform_allocation(specs, PrivacyBudget.pure(epsilon))
        assert solution.objective == pytest.approx(closed.total_weighted_variance(), rel=1e-3)

    def test_two_marginals_random_weights(self):
        """Random per-row weights over a two-marginal strategy: the convex
        optimum never beats the (group-restricted) closed form by more than
        numerical tolerance, and never does worse than uniform."""
        from repro.queries.matrix import strategy_matrix_from_masks

        strategy = strategy_matrix_from_masks([0b0011, 0b1100], 4)
        rng = np.random.default_rng(5)
        # Within-group-constant weights keep the recovery consistent with the
        # grouping (Definition 3.2), where the closed form is exactly optimal.
        weights = np.concatenate([np.full(4, 3.0), np.full(4, 1.5)])
        epsilon = 1.0
        solution = solve_budget_problem(strategy, weights, epsilon)
        groups = greedy_grouping(strategy)
        labels = [f"group-{i}" for i in range(len(groups))]
        specs = [
            group_specs_from_matrices(strategy, np.eye(8), groups, labels=labels)[i]
            for i in range(len(groups))
        ]
        # Patch the weights to the intended per-row weights.
        from repro.budget.grouping import GroupSpec

        specs = [
            GroupSpec(label=s.label, size=s.size, constant=s.constant, weight=float(weights[list(groups[i])].sum()))
            for i, s in enumerate(specs)
        ]
        closed = optimal_allocation(specs, PrivacyBudget.pure(epsilon))
        assert solution.objective == pytest.approx(closed.total_weighted_variance(), rel=1e-3)

    def test_solver_is_slower_but_equivalent_on_fourier(self, binary_schema_3):
        from repro.queries import all_k_way
        from repro.queries.matrix import fourier_basis_matrix
        from repro.strategies.fourier import FourierStrategy

        workload = all_k_way(binary_schema_3, 1)
        strategy_obj = FourierStrategy(workload)
        specs = strategy_obj.group_specs()
        epsilon = 1.0
        closed = optimal_allocation(specs, PrivacyBudget.pure(epsilon))

        # Dense formulation restricted to the measured coefficients.
        dense_f = fourier_basis_matrix(3)
        masks = list(strategy_obj.coefficient_masks)
        strategy_matrix = dense_f[masks, :]
        weights = np.array([spec.weight for spec in specs])
        solution = solve_budget_problem(strategy_matrix, weights, epsilon)
        assert solution.objective == pytest.approx(closed.total_weighted_variance(), rel=1e-2)
