"""Tests for RNG plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = ensure_rng(123).integers(0, 1000, size=10)
        b = ensure_rng(123).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(sequence), np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5
        assert all(isinstance(child, np.random.Generator) for child in children)

    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 2)
        a = children[0].integers(0, 10**9, size=5)
        b = children[1].integers(0, 10**9, size=5)
        assert not np.array_equal(a, b)

    def test_reproducible_from_seed(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(99, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(99, 3)]
        assert first == second

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
