"""Tests for argument validation helpers."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import PrivacyError
from repro.utils.validation import (
    check_delta,
    check_epsilon,
    check_positive_int,
    check_probability,
)


class TestCheckEpsilon:
    def test_accepts_positive(self):
        assert check_epsilon(0.5) == 0.5
        assert check_epsilon(10) == 10.0

    @pytest.mark.parametrize("value", [0.0, -1.0, math.nan, math.inf])
    def test_rejects_invalid(self, value):
        with pytest.raises(PrivacyError):
            check_epsilon(value)

    def test_custom_name_in_message(self):
        with pytest.raises(PrivacyError, match="eta"):
            check_epsilon(-1, name="eta")


class TestCheckDelta:
    def test_accepts_open_interval(self):
        assert check_delta(1e-9) == 1e-9
        assert check_delta(0.5) == 0.5

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.1, 2.0])
    def test_rejects_boundary_and_outside(self, value):
        with pytest.raises(PrivacyError):
            check_delta(value)


class TestCheckPositiveInt:
    def test_accepts_positive_integers(self):
        assert check_positive_int(3, name="n") == 3
        assert check_positive_int(1, name="n") == 1

    @pytest.mark.parametrize("value", [0, -2, 2.5])
    def test_rejects_invalid(self, value):
        with pytest.raises(ValueError):
            check_positive_int(value, name="n")


class TestCheckProbability:
    def test_accepts_unit_interval(self):
        assert check_probability(0.0, name="p") == 0.0
        assert check_probability(1.0, name="p") == 1.0
        assert check_probability(0.3, name="p") == 0.3

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, name="p")
