"""Tests for bit-mask helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import (
    bit_indices,
    dominated_by,
    dominates,
    from_bit_indices,
    hamming_weight,
    iter_submasks,
    iter_supersets,
    mask_to_tuple,
    masks_of_weight,
    parity,
    project_index,
    tuple_to_mask,
)

masks = st.integers(min_value=0, max_value=(1 << 12) - 1)


class TestHammingWeight:
    def test_zero(self):
        assert hamming_weight(0) == 0

    def test_single_bits(self):
        for bit in range(20):
            assert hamming_weight(1 << bit) == 1

    def test_all_ones(self):
        assert hamming_weight((1 << 10) - 1) == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hamming_weight(-1)

    @given(masks)
    def test_matches_binary_string(self, mask):
        assert hamming_weight(mask) == bin(mask).count("1")


class TestParity:
    @given(masks)
    def test_parity_is_weight_mod_two(self, mask):
        assert parity(mask) == hamming_weight(mask) % 2

    def test_small_values(self):
        assert parity(0) == 0
        assert parity(1) == 1
        assert parity(3) == 0
        assert parity(7) == 1


class TestDominance:
    def test_everything_dominates_zero(self):
        for mask in (0, 1, 5, 255):
            assert dominated_by(0, mask)
            assert dominates(mask, 0)

    def test_strict_example(self):
        assert dominated_by(0b010, 0b110)
        assert not dominated_by(0b001, 0b110)

    @given(masks, masks)
    def test_dominates_is_converse(self, a, b):
        assert dominated_by(a, b) == dominates(b, a)

    @given(masks, masks)
    def test_dominance_definition(self, a, b):
        assert dominated_by(a, b) == ((a & b) == a)


class TestBitIndexConversions:
    def test_round_trip_indices(self):
        assert from_bit_indices(bit_indices(0b101101)) == 0b101101

    def test_bit_indices_sorted(self):
        assert bit_indices(0b10110) == (1, 2, 4)

    def test_from_bit_indices_duplicates_collapse(self):
        assert from_bit_indices([0, 0, 3]) == 0b1001

    def test_from_bit_indices_rejects_negative(self):
        with pytest.raises(ValueError):
            from_bit_indices([-1])

    @given(masks)
    def test_round_trip_property(self, mask):
        assert from_bit_indices(bit_indices(mask)) == mask


class TestTupleConversions:
    def test_mask_to_tuple_little_endian(self):
        assert mask_to_tuple(0b011, 3) == (1, 1, 0)

    def test_tuple_round_trip(self):
        assert tuple_to_mask(mask_to_tuple(0b1010, 4)) == 0b1010

    def test_mask_too_wide(self):
        with pytest.raises(ValueError):
            mask_to_tuple(0b1000, 3)

    def test_tuple_rejects_non_binary(self):
        with pytest.raises(ValueError):
            tuple_to_mask([0, 2, 1])

    @given(masks)
    def test_round_trip_property(self, mask):
        width = max(mask.bit_length(), 1)
        assert tuple_to_mask(mask_to_tuple(mask, width)) == mask


class TestSubmaskIteration:
    def test_count_is_power_of_two(self):
        mask = 0b10110
        subs = list(iter_submasks(mask))
        assert len(subs) == 1 << hamming_weight(mask)

    def test_all_dominated(self):
        mask = 0b1101
        assert all(dominated_by(sub, mask) for sub in iter_submasks(mask))

    def test_exclusion_flags(self):
        mask = 0b11
        assert 0 not in list(iter_submasks(mask, include_zero=False))
        assert mask not in list(iter_submasks(mask, include_self=False))

    def test_zero_mask(self):
        assert list(iter_submasks(0)) == [0]
        assert list(iter_submasks(0, include_zero=False)) == []

    @given(masks)
    def test_distinct_and_complete(self, mask):
        subs = list(iter_submasks(mask))
        assert len(subs) == len(set(subs)) == 1 << hamming_weight(mask)


class TestSupersetIteration:
    def test_supersets_within_universe(self):
        universe = 0b1111
        mask = 0b0101
        supers = list(iter_supersets(mask, universe))
        assert len(supers) == 1 << (hamming_weight(universe) - hamming_weight(mask))
        assert all(dominated_by(mask, sup) and dominated_by(sup, universe) for sup in supers)

    def test_mask_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            list(iter_supersets(0b100, 0b011))


class TestMasksOfWeight:
    def test_counts_match_binomial(self):
        import math

        for d in range(1, 8):
            for k in range(0, d + 1):
                assert len(list(masks_of_weight(d, k))) == math.comb(d, k)

    def test_all_have_requested_weight(self):
        assert all(hamming_weight(m) == 3 for m in masks_of_weight(7, 3))

    def test_out_of_range_is_empty(self):
        assert list(masks_of_weight(4, 5)) == []
        assert list(masks_of_weight(4, -1)) == []


class TestProjectIndex:
    def test_identity_mask(self):
        assert project_index(0b1011, 0b1111) == 0b1011

    def test_single_bit(self):
        assert project_index(0b100, 0b100) == 1
        assert project_index(0b011, 0b100) == 0

    def test_compact_reindexing(self):
        # mask keeps bits 1 and 3; index 0b1010 has both set -> compact 0b11.
        assert project_index(0b1010, 0b1010) == 0b11
        # index 0b1000 keeps only bit 3, the second kept bit -> compact 0b10.
        assert project_index(0b1000, 0b1010) == 0b10

    @given(masks, masks)
    def test_result_fits_in_mask_weight(self, index, mask):
        assert 0 <= project_index(index, mask) < (1 << hamming_weight(mask))

    @given(masks)
    def test_projection_onto_full_mask_is_identity(self, index):
        full = (1 << 12) - 1
        assert project_index(index, full) == index


class TestPopcountArray:
    def test_matches_hamming_weight(self):
        import numpy as np

        from repro.utils.bits import popcount_array

        values = np.array([0, 1, 2, 3, 0b1011, (1 << 40) - 1, (1 << 62) + 5])
        assert popcount_array(values).tolist() == [
            hamming_weight(int(v)) for v in values
        ]

    def test_2d_arrays(self):
        import numpy as np

        from repro.utils.bits import popcount_array

        grid = np.arange(16).reshape(4, 4)
        expected = [[hamming_weight(int(v)) for v in row] for row in grid]
        assert popcount_array(grid).tolist() == expected

    def test_rejects_oversized_masks(self):
        import numpy as np
        import pytest

        from repro.utils.bits import popcount_array

        with pytest.raises(ValueError):
            popcount_array(np.array([1 << 63]))

    def test_rejects_negative_masks(self):
        import numpy as np
        import pytest

        from repro.utils.bits import popcount_array

        # A signed array would otherwise wrap to a huge uint64 and silently
        # return popcount 64.
        with pytest.raises(ValueError):
            popcount_array(np.array([-1, 3]))
