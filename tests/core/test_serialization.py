"""Round-trip serialization of budgets, allocations, schemas and releases.

These are the helpers the release store builds on: every ``to_dict`` payload
must survive a JSON round trip and rebuild an equivalent object with
``from_dict``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.budget.allocation import NoiseAllocation, optimal_allocation, uniform_allocation
from repro.budget.grouping import GroupSpec
from repro.core.engine import release_marginals
from repro.core.result import ReleaseResult
from repro.domain import Attribute, Schema
from repro.exceptions import BudgetError, WorkloadError
from repro.mechanisms import PrivacyBudget
from repro.queries import MarginalWorkload, all_k_way, star_workload
from repro.strategies import query_strategy


def roundtrip(payload):
    """Force the payload through actual JSON text, like the store does."""
    return json.loads(json.dumps(payload))


class TestPrivacyBudget:
    def test_pure_roundtrip(self):
        budget = PrivacyBudget.pure(0.75)
        assert PrivacyBudget.from_dict(roundtrip(budget.to_dict())) == budget

    def test_approximate_roundtrip(self):
        budget = PrivacyBudget.approximate(1.5, 1e-6)
        assert PrivacyBudget.from_dict(roundtrip(budget.to_dict())) == budget

    def test_missing_delta_defaults_to_pure(self):
        assert PrivacyBudget.from_dict({"epsilon": 2.0}) == PrivacyBudget.pure(2.0)


class TestGroupSpec:
    def test_roundtrip(self):
        spec = GroupSpec(label="marginal-0x3", size=4, constant=1.0, weight=12.0)
        assert GroupSpec.from_dict(roundtrip(spec.to_dict())) == spec


class TestNoiseAllocation:
    @pytest.fixture
    def allocation(self) -> NoiseAllocation:
        schema = Schema.binary(["a", "b", "c", "d"])
        strategy = query_strategy(all_k_way(schema, 2))
        return optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))

    def test_roundtrip_equality(self, allocation):
        rebuilt = NoiseAllocation.from_dict(roundtrip(allocation.to_dict()))
        assert rebuilt == allocation
        assert rebuilt.total_weighted_variance() == pytest.approx(
            allocation.total_weighted_variance()
        )
        assert rebuilt.verify_privacy()

    def test_uniform_kind_preserved(self):
        schema = Schema.binary(["a", "b", "c"])
        strategy = query_strategy(all_k_way(schema, 1))
        allocation = uniform_allocation(strategy.group_specs(), PrivacyBudget.approximate(1.0, 1e-5))
        rebuilt = NoiseAllocation.from_dict(roundtrip(allocation.to_dict()))
        assert rebuilt.kind == "uniform"
        assert rebuilt.mechanism == "gaussian"

    def test_unknown_kind_rejected(self, allocation):
        payload = allocation.to_dict()
        payload["kind"] = "magic"
        with pytest.raises(BudgetError):
            NoiseAllocation.from_dict(payload)


class TestSchemaAndWorkload:
    def test_schema_roundtrip_with_labels(self):
        schema = Schema(
            [
                Attribute("smoker", 2, labels=("no", "yes")),
                Attribute("region", 4, labels=("n", "s", "e", "w")),
                Attribute("income", 3),
            ]
        )
        rebuilt = Schema.from_dict(roundtrip(schema.to_dict()))
        assert rebuilt == schema
        assert rebuilt.attribute("region").labels == ("n", "s", "e", "w")

    def test_workload_roundtrip(self):
        schema = Schema.binary(["a", "b", "c", "d", "e"])
        workload = star_workload(schema, 1)
        rebuilt = MarginalWorkload.from_dict(schema, roundtrip(workload.to_dict()))
        assert rebuilt.masks == workload.masks
        assert rebuilt.name == workload.name


class TestReleaseResult:
    @pytest.fixture
    def release(self) -> ReleaseResult:
        schema = Schema.binary(["a", "b", "c", "d"])
        workload = all_k_way(schema, 2)
        vector = np.arange(schema.domain_size, dtype=np.float64)
        return release_marginals(vector, workload, budget=1.0, strategy="F", rng=11)

    def test_roundtrip_embedded_marginals(self, release):
        rebuilt = ReleaseResult.from_dict(roundtrip(release.to_dict()))
        assert rebuilt.workload.masks == release.workload.masks
        assert rebuilt.workload.schema == release.workload.schema
        assert rebuilt.strategy_name == release.strategy_name
        assert rebuilt.allocation == release.allocation
        assert rebuilt.consistent == release.consistent
        assert rebuilt.expected_total_variance == pytest.approx(release.expected_total_variance)
        assert rebuilt.elapsed_seconds == pytest.approx(release.elapsed_seconds)
        for ours, theirs in zip(release.marginals, rebuilt.marginals):
            np.testing.assert_allclose(theirs, ours)

    def test_roundtrip_external_marginals(self, release):
        payload = roundtrip(release.to_dict(include_marginals=False))
        assert "marginals" not in payload
        rebuilt = ReleaseResult.from_dict(payload, marginals=release.marginals)
        for ours, theirs in zip(release.marginals, rebuilt.marginals):
            np.testing.assert_allclose(theirs, ours)

    def test_missing_marginals_rejected(self, release):
        payload = release.to_dict(include_marginals=False)
        with pytest.raises(WorkloadError):
            ReleaseResult.from_dict(payload)

    def test_future_format_version_rejected(self, release):
        payload = release.to_dict()
        payload["format_version"] = 999
        with pytest.raises(WorkloadError):
            ReleaseResult.from_dict(payload)
