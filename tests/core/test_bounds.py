"""Tests for the Table 1 theoretical bounds."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import (
    all_k_way_error_bound,
    base_counts_bound,
    fourier_nonuniform_bound,
    fourier_total_variance_all_k_way,
    fourier_uniform_bound,
    lower_bound,
    marginals_bound,
    table1_bounds,
)
from repro.exceptions import PrivacyError


class TestIndividualBounds:
    def test_all_scale_as_one_over_epsilon(self):
        for bound in (
            base_counts_bound,
            marginals_bound,
            fourier_uniform_bound,
            fourier_nonuniform_bound,
            lower_bound,
        ):
            assert bound(10, 2, 0.5) == pytest.approx(2.0 * bound(10, 2, 1.0))

    def test_base_counts_formula(self):
        assert base_counts_bound(10, 2, 1.0) == pytest.approx(2.0 ** 6)

    def test_marginals_formula(self):
        assert marginals_bound(10, 2, 1.0) == pytest.approx(4 * math.comb(10, 2))

    def test_fourier_uniform_formula(self):
        assert fourier_uniform_bound(10, 2, 1.0) == pytest.approx(
            2 * math.comb(10, 2) * math.sqrt(4)
        )

    def test_fourier_nonuniform_formula(self):
        assert fourier_nonuniform_bound(10, 2, 1.0) == pytest.approx(
            2 * math.sqrt(math.comb(10, 2) * math.comb(12, 2))
        )

    def test_lower_bound_formula(self):
        assert lower_bound(10, 2, 1.0) == pytest.approx(math.sqrt(math.comb(10, 2)))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            base_counts_bound(4, 5, 1.0)
        with pytest.raises(ValueError):
            base_counts_bound(4, 0, 1.0)
        with pytest.raises(Exception):
            base_counts_bound(4, 2, -1.0)

    def test_dispatch(self):
        assert all_k_way_error_bound("marginals", 8, 2, 1.0) == marginals_bound(8, 2, 1.0)
        with pytest.raises(PrivacyError):
            all_k_way_error_bound("unknown", 8, 2, 1.0)


class TestOrderingsFromTable1:
    """The qualitative content of Table 1: which method wins in which regime."""

    def test_nonuniform_fourier_beats_uniform_fourier(self):
        for d in (10, 16, 20):
            for k in range(1, d // 2):
                assert fourier_nonuniform_bound(d, k, 1.0) <= fourier_uniform_bound(d, k, 1.0) * 1.01

    def test_nonuniform_fourier_beats_direct_marginals_for_small_k(self):
        for d in (16, 20, 30):
            for k in (1, 2, 3):
                assert fourier_nonuniform_bound(d, k, 1.0) < marginals_bound(d, k, 1.0)

    def test_everything_above_lower_bound(self):
        for d in (10, 16):
            for k in (1, 2, 3):
                floor = lower_bound(d, k, 1.0)
                for method in ("base_counts", "marginals", "fourier_uniform", "fourier_nonuniform"):
                    assert all_k_way_error_bound(method, d, k, 1.0) >= floor * 0.99

    def test_base_counts_win_for_high_order_marginals(self):
        """For k close to d the base-count strategy dominates — the regime the
        paper's Figure 5(e)-(f) discussion points to."""
        d = 16
        assert base_counts_bound(d, d - 2, 1.0) < marginals_bound(d, d - 2, 1.0)

    def test_approximate_dp_columns_are_smaller_for_large_workloads(self):
        d, k, eps, delta = 20, 3, 1.0, 1e-6
        assert marginals_bound(d, k, eps, delta) < marginals_bound(d, k, eps)
        assert fourier_nonuniform_bound(d, k, eps, delta) < fourier_nonuniform_bound(d, k, eps)


class TestTable1Rows:
    def test_all_methods_present(self):
        rows = table1_bounds(16, 2, 1.0)
        assert set(rows) == {
            "base_counts",
            "marginals",
            "fourier_uniform",
            "fourier_nonuniform",
            "lower_bound",
        }

    def test_rows_contain_both_privacy_regimes(self):
        rows = table1_bounds(16, 2, 1.0, delta=1e-6)
        for row in rows.values():
            assert row.pure > 0 and row.approximate > 0


class TestExactFourierVariance:
    def test_nonuniform_no_worse_than_uniform(self):
        for d in (5, 10, 16):
            for k in (1, 2):
                assert fourier_total_variance_all_k_way(
                    d, k, 1.0, non_uniform=True
                ) <= fourier_total_variance_all_k_way(d, k, 1.0, non_uniform=False) * (1 + 1e-12)

    def test_epsilon_scaling(self):
        assert fourier_total_variance_all_k_way(10, 2, 2.0) == pytest.approx(
            fourier_total_variance_all_k_way(10, 2, 1.0) / 4.0
        )

    def test_k1_closed_form(self):
        """For k = 1 the uniform total variance can be checked by hand:
        m = d + 1 coefficients, C = 2^{-d/2}, each marginal uses the empty and
        its own coefficient with weight 2^{d-1}."""
        d, eps = 6, 1.0
        sum_c = (d + 1) * 2.0 ** (-d / 2.0)
        sum_s = (2.0 ** (d - 1)) * (d + d)  # beta=0 counted d times, each singleton once
        expected = 2.0 * sum_c**2 * sum_s / eps**2
        assert fourier_total_variance_all_k_way(d, 1, eps, non_uniform=False) == pytest.approx(
            expected
        )
