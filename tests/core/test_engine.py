"""End-to-end tests for the release engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MarginalReleaseEngine, release_marginals
from repro.exceptions import WorkloadError
from repro.mechanisms import PrivacyBudget
from repro.queries import all_k_way, star_workload
from repro.strategies import FourierStrategy, query_strategy
from tests.conftest import marginals_are_consistent


class TestEngineConstruction:
    def test_strategy_by_name(self, workload_2way_5):
        engine = MarginalReleaseEngine(workload_2way_5, "F")
        assert isinstance(engine.strategy, FourierStrategy)
        assert engine.non_uniform is True

    def test_strategy_instance(self, workload_2way_5):
        strategy = query_strategy(workload_2way_5)
        engine = MarginalReleaseEngine(workload_2way_5, strategy)
        assert engine.strategy is strategy

    def test_strategy_for_other_workload_rejected(self, workload_2way_5, binary_schema_5):
        other = all_k_way(binary_schema_5, 1)
        with pytest.raises(WorkloadError):
            MarginalReleaseEngine(workload_2way_5, query_strategy(other))

    def test_allocation_kind_follows_flag(self, workload_2way_5):
        optimal = MarginalReleaseEngine(workload_2way_5, "F", non_uniform=True)
        uniform = MarginalReleaseEngine(workload_2way_5, "F", non_uniform=False)
        assert optimal.allocation(1.0).kind == "optimal"
        assert uniform.allocation(1.0).kind == "uniform"

    def test_expected_total_variance_matches_allocation(self, workload_2way_5):
        engine = MarginalReleaseEngine(workload_2way_5, "Q")
        assert engine.expected_total_variance(0.5) == pytest.approx(
            engine.allocation(0.5).total_weighted_variance()
        )


class TestRelease:
    @pytest.mark.parametrize("strategy", ["I", "Q", "F", "C"])
    def test_all_strategies_produce_valid_results(self, strategy, small_dataset):
        workload = all_k_way(small_dataset.schema, 2)
        result = release_marginals(
            small_dataset, workload, budget=1.0, strategy=strategy, rng=0
        )
        assert len(result.marginals) == len(workload)
        assert result.strategy_name == strategy
        assert result.budget.epsilon == 1.0
        assert all(np.all(np.isfinite(m)) for m in result.marginals)

    @pytest.mark.parametrize("strategy", ["I", "Q", "F", "C"])
    def test_results_are_consistent(self, strategy, small_dataset):
        workload = all_k_way(small_dataset.schema, 2)
        result = release_marginals(
            small_dataset, workload, budget=0.8, strategy=strategy, rng=1
        )
        assert result.consistent
        assert marginals_are_consistent(workload, result.marginals)

    def test_accepts_dataset_table_and_vector(self, small_dataset):
        workload = all_k_way(small_dataset.schema, 1)
        table = small_dataset.contingency_table()
        for data in (small_dataset, table, table.counts):
            result = release_marginals(data, workload, budget=1.0, strategy="F", rng=3)
            assert len(result.marginals) == len(workload)

    def test_schema_mismatch_rejected(self, small_dataset, binary_schema_3):
        workload = all_k_way(binary_schema_3, 1)
        with pytest.raises(WorkloadError):
            release_marginals(small_dataset, workload, budget=1.0)

    def test_vector_length_mismatch_rejected(self, workload_2way_5):
        with pytest.raises(WorkloadError):
            release_marginals(np.zeros(8), workload_2way_5, budget=1.0)

    def test_reproducible_with_seed(self, small_dataset):
        workload = all_k_way(small_dataset.schema, 2)
        a = release_marginals(small_dataset, workload, budget=0.5, strategy="F", rng=7)
        b = release_marginals(small_dataset, workload, budget=0.5, strategy="F", rng=7)
        for x, y in zip(a.marginals, b.marginals):
            assert np.array_equal(x, y)

    def test_different_seeds_differ(self, small_dataset):
        workload = all_k_way(small_dataset.schema, 1)
        a = release_marginals(small_dataset, workload, budget=0.5, strategy="F", rng=1)
        b = release_marginals(small_dataset, workload, budget=0.5, strategy="F", rng=2)
        assert any(not np.array_equal(x, y) for x, y in zip(a.marginals, b.marginals))

    def test_error_decreases_with_epsilon(self, small_dataset):
        workload = all_k_way(small_dataset.schema, 2)
        table = small_dataset.contingency_table()
        errors = {}
        for epsilon in (0.05, 5.0):
            values = [
                release_marginals(
                    small_dataset, workload, budget=epsilon, strategy="F", rng=seed
                ).absolute_error(table)
                for seed in range(5)
            ]
            errors[epsilon] = np.mean(values)
        assert errors[5.0] < errors[0.05]

    def test_non_uniform_not_worse_in_expectation(self, small_dataset):
        workload = star_workload(small_dataset.schema, 1)
        plus = MarginalReleaseEngine(workload, "F", non_uniform=True)
        plain = MarginalReleaseEngine(workload, "F", non_uniform=False)
        assert plus.expected_total_variance(1.0) <= plain.expected_total_variance(1.0)

    def test_approximate_dp_budget(self, small_dataset):
        workload = all_k_way(small_dataset.schema, 1)
        budget = PrivacyBudget.approximate(1.0, 1e-6)
        result = release_marginals(small_dataset, workload, budget=budget, strategy="F", rng=0)
        assert result.budget.is_approximate

    def test_consistency_can_be_disabled(self, small_dataset):
        workload = all_k_way(small_dataset.schema, 2)
        result = release_marginals(
            small_dataset, workload, budget=0.3, strategy="Q", consistency=False, rng=0
        )
        assert not result.consistent

    def test_timings_recorded(self, small_dataset):
        workload = all_k_way(small_dataset.schema, 2)
        result = release_marginals(small_dataset, workload, budget=1.0, strategy="Q", rng=0)
        assert {"budgeting", "measurement", "recovery", "consistency"} <= set(
            result.elapsed_seconds
        )
        assert result.total_time >= 0.0

    def test_query_weights_change_allocation(self, small_dataset):
        workload = star_workload(small_dataset.schema, 1)
        weights = np.ones(len(workload))
        weights[0] = 50.0
        weighted = MarginalReleaseEngine(workload, "Q", query_weights=weights)
        unweighted = MarginalReleaseEngine(workload, "Q")
        budget_weighted = weighted.allocation(1.0)
        budget_unweighted = unweighted.allocation(1.0)
        label = budget_weighted.groups[0].label
        assert budget_weighted.budget_for(label) > budget_unweighted.budget_for(label)
