"""Tests for the release result container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import release_marginals
from repro.core.result import ReleaseResult
from repro.exceptions import WorkloadError
from repro.queries import all_k_way


@pytest.fixture
def result(small_dataset):
    workload = all_k_way(small_dataset.schema, 2)
    return release_marginals(small_dataset, workload, budget=1.0, strategy="F", rng=0)


class TestReleaseResult:
    def test_marginal_count_validated(self, small_dataset):
        workload = all_k_way(small_dataset.schema, 1)
        good = release_marginals(small_dataset, workload, budget=1.0, strategy="I", rng=0)
        with pytest.raises(WorkloadError):
            ReleaseResult(
                workload=workload,
                marginals=good.marginals[:-1],
                strategy_name="I",
                allocation=good.allocation,
                consistent=True,
                expected_total_variance=1.0,
            )

    def test_marginal_shape_validated(self, small_dataset):
        workload = all_k_way(small_dataset.schema, 1)
        good = release_marginals(small_dataset, workload, budget=1.0, strategy="I", rng=0)
        broken = list(good.marginals)
        broken[0] = np.zeros(5)
        with pytest.raises(WorkloadError):
            ReleaseResult(
                workload=workload,
                marginals=broken,
                strategy_name="I",
                allocation=good.allocation,
                consistent=True,
                expected_total_variance=1.0,
            )

    def test_marginal_lookup_by_attributes(self, result, small_dataset):
        names = small_dataset.schema.names[:2]
        marginal = result.marginal_for(names)
        assert marginal.shape == (4,)

    def test_marginal_lookup_by_mask(self, result, small_dataset):
        mask = small_dataset.schema.mask_of(small_dataset.schema.names[:2])
        assert np.array_equal(result.marginal_for(mask), result.marginal_for(small_dataset.schema.names[:2]))

    def test_marginal_lookup_missing(self, result, small_dataset):
        with pytest.raises(WorkloadError):
            result.marginal_for([small_dataset.schema.names[0]])  # 1-way not in Q2

    def test_as_dict_keys(self, result):
        mapping = result.as_dict()
        assert set(mapping) == set(result.workload.masks)

    def test_budgeting_label(self, result):
        assert result.budgeting == "optimal"

    def test_error_helpers_match_metrics_module(self, result, small_dataset):
        from repro.analysis.metrics import average_absolute_error, average_relative_error

        table = small_dataset.contingency_table()
        assert result.absolute_error(table) == pytest.approx(
            average_absolute_error(result.workload, table, result.marginals)
        )
        assert result.relative_error(table) == pytest.approx(
            average_relative_error(result.workload, table, result.marginals)
        )

    def test_repr_mentions_strategy_and_epsilon(self, result):
        text = repr(result)
        assert "F" in text and "epsilon=1" in text
