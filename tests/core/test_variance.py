"""Tests for analytic per-query variances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.budget.allocation import optimal_allocation, uniform_allocation
from repro.core.variance import per_query_variances, total_weighted_variance
from repro.exceptions import BudgetError
from repro.mechanisms import PrivacyBudget
from repro.queries import all_k_way, star_workload
from repro.strategies import (
    ExplicitMatrixStrategy,
    FourierStrategy,
    IdentityStrategy,
    query_strategy,
)


@pytest.fixture(params=["I", "Q", "F"])
def strategy(request, binary_schema_5):
    workload = star_workload(binary_schema_5, 1)
    if request.param == "I":
        return IdentityStrategy(workload)
    if request.param == "Q":
        return query_strategy(workload)
    return FourierStrategy(workload)


class TestPerQueryVariances:
    def test_sum_matches_allocation_objective(self, strategy):
        """sum_q Var(query q) equals the allocation's weighted objective
        (with unit weights) — the quantity the budgeting optimises."""
        for non_uniform in (True, False):
            budget = PrivacyBudget.pure(0.7)
            allocation = (
                optimal_allocation(strategy.group_specs(), budget)
                if non_uniform
                else uniform_allocation(strategy.group_specs(), budget)
            )
            per_query = per_query_variances(strategy, allocation)
            assert per_query.shape == (len(strategy.workload),)
            assert per_query.sum() == pytest.approx(allocation.total_weighted_variance())

    def test_total_weighted_variance_with_weights(self, strategy):
        budget = PrivacyBudget.pure(1.0)
        weights = np.linspace(1.0, 2.0, len(strategy.workload))
        allocation = optimal_allocation(strategy.group_specs(weights), budget)
        per_query = per_query_variances(strategy, allocation)
        assert total_weighted_variance(strategy, allocation, weights) == pytest.approx(
            float(np.dot(weights, per_query))
        )

    def test_gaussian_budget_supported(self, strategy):
        budget = PrivacyBudget.approximate(1.0, 1e-6)
        allocation = optimal_allocation(strategy.group_specs(), budget)
        per_query = per_query_variances(strategy, allocation)
        assert per_query.sum() == pytest.approx(allocation.total_weighted_variance())

    def test_explicit_strategy_supported(self, binary_schema_5):
        workload = all_k_way(binary_schema_5, 1)
        strategy = ExplicitMatrixStrategy(workload, np.eye(32), name="identity")
        allocation = uniform_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))
        per_query = per_query_variances(strategy, allocation)
        # Identity strategy: each 1-way marginal sums all 32 noisy cells,
        # each of variance 2, so the total variance per marginal is 64.
        assert np.allclose(per_query, 64.0)

    def test_unknown_strategy_type_rejected(self, workload_2way_5):
        from repro.strategies.base import Strategy

        class Mystery(Strategy):
            def group_specs(self, a=None):
                return []

            def measure(self, x, allocation, rng=None):
                raise NotImplementedError

            def estimate(self, measurement):
                raise NotImplementedError

        mystery = Mystery(workload_2way_5, name="mystery")
        allocation = uniform_allocation(
            query_strategy(workload_2way_5).group_specs(), PrivacyBudget.pure(1.0)
        )
        with pytest.raises(BudgetError):
            per_query_variances(mystery, allocation)


class TestEmpiricalAgreement:
    @pytest.mark.parametrize("name", ["I", "Q", "F"])
    def test_monte_carlo_matches_analytic(self, binary_schema_3, name):
        """Measured squared error over many draws matches the analytic
        per-query variance within Monte-Carlo tolerance."""
        from repro.strategies import make_strategy

        workload = all_k_way(binary_schema_3, 1)
        strategy = make_strategy(name, workload)
        allocation = optimal_allocation(strategy.group_specs(), PrivacyBudget.pure(1.0))
        analytic = per_query_variances(strategy, allocation)
        x = np.zeros(workload.domain_size)
        truth = workload.true_answers(x)
        rng = np.random.default_rng(0)
        totals = np.zeros(len(workload))
        repetitions = 400
        for _ in range(repetitions):
            estimates = strategy.estimate(strategy.measure(x, allocation, rng=rng))
            for position, (estimate, true_marginal) in enumerate(zip(estimates, truth)):
                totals[position] += float(((estimate - true_marginal) ** 2).sum())
        empirical = totals / repetitions
        assert np.allclose(empirical, analytic, rtol=0.2)
