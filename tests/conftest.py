"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.domain import Attribute, ContingencyTable, Dataset, Schema
from repro.queries import MarginalQuery, MarginalWorkload, all_k_way


# --------------------------------------------------------------------------- #
# schemas
# --------------------------------------------------------------------------- #
@pytest.fixture
def binary_schema_3() -> Schema:
    """Three binary attributes (the paper's worked example domain)."""
    return Schema.binary(["A", "B", "C"])


@pytest.fixture
def binary_schema_5() -> Schema:
    """Five binary attributes (32-cell domain, cheap for dense comparisons)."""
    return Schema.binary(["a", "b", "c", "d", "e"])


@pytest.fixture
def mixed_schema() -> Schema:
    """Attributes of mixed cardinality (2, 3, 4) -> 1 + 2 + 2 = 5 bits."""
    return Schema(
        [Attribute("x", 2), Attribute("y", 3), Attribute("z", 4)]
    )


# --------------------------------------------------------------------------- #
# data
# --------------------------------------------------------------------------- #
@pytest.fixture
def paper_example_table(binary_schema_3) -> ContingencyTable:
    """The five-row table of Figure 1(a): x = (1, 2, 0, 1, 0, 0, 1, 0)."""
    records = [
        (0, 0, 1),
        (0, 1, 1),
        (0, 0, 0),
        (0, 0, 1),
        (1, 1, 0),
    ]
    return Dataset.from_tuples(binary_schema_3, records).contingency_table()


@pytest.fixture
def random_counts_5(binary_schema_5) -> np.ndarray:
    """A reproducible random count vector over the 5-bit domain."""
    rng = np.random.default_rng(20130401)
    return rng.integers(0, 50, size=binary_schema_5.domain_size).astype(float)


@pytest.fixture
def small_dataset(binary_schema_5) -> Dataset:
    """A reproducible random dataset of 600 records over 5 binary attributes."""
    rng = np.random.default_rng(42)
    records = rng.integers(0, 2, size=(600, 5))
    return Dataset(binary_schema_5, records, name="small-test-data")


# --------------------------------------------------------------------------- #
# workloads
# --------------------------------------------------------------------------- #
@pytest.fixture
def workload_2way_5(binary_schema_5) -> MarginalWorkload:
    """All 2-way marginals over the 5-attribute binary schema."""
    return all_k_way(binary_schema_5, 2)


@pytest.fixture
def paper_example_workload(binary_schema_3) -> MarginalWorkload:
    """The workload of Figure 1(b): the marginal on A and the marginal on A, B."""
    return MarginalWorkload(
        binary_schema_3,
        [
            MarginalQuery.from_attributes(binary_schema_3, ["A"]),
            MarginalQuery.from_attributes(binary_schema_3, ["A", "B"]),
        ],
        name="intro-example",
    )


# --------------------------------------------------------------------------- #
# helpers (imported by tests as plain functions)
# --------------------------------------------------------------------------- #
def brute_force_marginal(x: np.ndarray, mask: int, d: int) -> np.ndarray:
    """O(N * 2**k) reference implementation of the marginal operator."""
    from repro.utils.bits import hamming_weight, project_index

    out = np.zeros(1 << hamming_weight(mask))
    for index, value in enumerate(np.asarray(x, dtype=float)):
        out[project_index(index, mask)] += value
    return out


def marginals_are_consistent(workload: MarginalWorkload, marginals, *, tol: float = 1e-6) -> bool:
    """Check mutual consistency: overlapping marginals agree on their common part."""
    from repro.strategies.marginal import submarginal

    for i, query_i in enumerate(workload.queries):
        for j, query_j in enumerate(workload.queries):
            if j <= i:
                continue
            common = query_i.mask & query_j.mask
            from_i = submarginal(marginals[i], query_i.mask, common)
            from_j = submarginal(marginals[j], query_j.mask, common)
            if not np.allclose(from_i, from_j, atol=tol * (1 + np.abs(from_i).max())):
                return False
    return True
